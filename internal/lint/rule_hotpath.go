package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// hotpathRule guards the per-vertex/per-edge loop bodies of the hot
// kernels: the function literals handed to a forLoop (`loop(n, ...)`)
// or to the scheduler's ParallelFor. These closures run millions of
// times per solve; a stray fmt call, an append that grows a slice, a
// map literal, or a string concatenation turns an O(edges) sweep into
// an allocation storm that the benchmarks then misattribute to the
// algorithm. In internal/core, where every kernel buffer comes from the
// scratch arena, any make() inside a loop body is flagged — the
// steady-state iterations are contractually allocation-free there.
// The rule applies only to the designated hot files
// (internal/core/kernel_*.go + loop.go, internal/sched/sched.go,
// internal/streaming/runner.go).
type hotpathRule struct{}

func (hotpathRule) Name() string { return "hotpath" }
func (hotpathRule) Doc() string {
	return "no fmt/log, append, make, map allocation, or string concat inside hot kernel loop bodies"
}

// hotFile reports whether the rule covers this file.
func hotFile(pkgPath, base string) bool {
	switch {
	case strings.HasSuffix(pkgPath, "internal/core"):
		return strings.HasPrefix(base, "kernel_") || base == "loop.go"
	case strings.HasSuffix(pkgPath, "internal/sched"):
		return base == "sched.go"
	case strings.HasSuffix(pkgPath, "internal/streaming"):
		return base == "runner.go"
	}
	return false
}

// hotLoopCall reports whether call hands a loop body to the scheduler:
// a `loop(...)` invocation (the kernels' forLoop, whether a parameter or
// a Batch field) or a `.ParallelFor`/`.ParallelForCtx` method call.
func hotLoopCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "loop"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "ParallelFor" || fun.Sel.Name == "ParallelForCtx" || fun.Sel.Name == "loop"
	}
	return false
}

func (r hotpathRule) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		base := filepath.Base(pkg.Fset.Position(file.Pos()).Filename)
		if !hotFile(pkg.Path, base) {
			continue
		}
		// The kernels bind their loop bodies to locals once per solve
		// (`pass1 := func(...)`) and pass the identifier, so resolve
		// idents at loop call sites back to their function literals.
		bound := boundFuncLits(pkg, file)
		checked := map[*ast.FuncLit]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !hotLoopCall(call) {
				return true
			}
			for _, arg := range call.Args {
				var body *ast.FuncLit
				switch arg := arg.(type) {
				case *ast.FuncLit:
					body = arg
				case *ast.Ident:
					body = bound[pkg.Info.Uses[arg]]
				case *ast.SelectorExpr:
					// Kernel state fields: `b.loop(n, s.pass1)`.
					body = bound[pkg.Info.Uses[arg.Sel]]
				}
				if body != nil && !checked[body] {
					checked[body] = true
					r.checkBody(pkg, body.Body, &out)
				}
			}
			return true
		})
	}
	return out
}

// boundFuncLits maps objects to the function literals assigned to them:
// locals (`body := func(...) {...}`) and struct fields
// (`s.pass1 = func(...) {...}`, the kernels' once-per-solve bound
// passes), so a loop body passed by name or by field is checked like an
// inline one. Reassigned names keep the last literal.
func boundFuncLits(pkg *Package, file *ast.File) map[types.Object]*ast.FuncLit {
	bound := map[types.Object]*ast.FuncLit{}
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			var obj types.Object
			switch lhs := assign.Lhs[i].(type) {
			case *ast.Ident:
				obj = pkg.Info.Defs[lhs]
				if obj == nil {
					obj = pkg.Info.Uses[lhs]
				}
			case *ast.SelectorExpr:
				obj = pkg.Info.Uses[lhs.Sel]
			}
			if obj != nil {
				bound[obj] = lit
			}
		}
		return true
	})
	return bound
}

func (r hotpathRule) checkBody(pkg *Package, body ast.Node, out *[]Finding) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			r.checkCall(pkg, n, out)
		case *ast.CompositeLit:
			if _, ok := n.Type.(*ast.MapType); ok {
				pkg.findingf(out, n, r.Name(), "map literal allocated inside a hot kernel loop")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n.X) {
				pkg.findingf(out, n, r.Name(), "string concatenation inside a hot kernel loop")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				pkg.findingf(out, n, r.Name(), "string concatenation inside a hot kernel loop")
			}
		}
		return true
	})
}

func (r hotpathRule) checkCall(pkg *Package, call *ast.CallExpr, out *[]Finding) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "append":
			if isBuiltin(pkg, fun) {
				pkg.findingf(out, call, r.Name(),
					"append inside a hot kernel loop (preallocate the slice outside the loop)")
			}
		case "print", "println":
			if isBuiltin(pkg, fun) {
				pkg.findingf(out, call, r.Name(), "%s call inside a hot kernel loop", fun.Name)
			}
		}
	case *ast.SelectorExpr:
		if pkgName := importedPackage(pkg, fun); pkgName == "fmt" || pkgName == "log" {
			pkg.findingf(out, call, r.Name(),
				"%s.%s call inside a hot kernel loop (format outside, or gate behind the trace writer)",
				pkgName, fun.Sel.Name)
		} else if _, ok := fun.X.(*ast.Ident); ok && pkgName == "" && callMakesMap(pkg, call) {
			pkg.findingf(out, call, r.Name(), "map allocation inside a hot kernel loop")
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(pkg, id) {
		switch {
		case callMakesMap(pkg, call):
			pkg.findingf(out, call, r.Name(), "map allocation inside a hot kernel loop")
		case strings.HasSuffix(pkg.Path, "internal/core"):
			// The core kernels have a scratch arena precisely so their
			// loop bodies never allocate; any make() here regresses the
			// allocation-free steady state.
			pkg.findingf(out, call, r.Name(),
				"make() inside a hot kernel loop (draw the buffer from the per-worker scratch arena)")
		}
	}
}

// callMakesMap reports whether call is make(map[...]...).
func callMakesMap(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if _, ok := call.Args[0].(*ast.MapType); ok {
		return true
	}
	if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.IsType() {
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	return false
}

// isBuiltin reports whether id resolves to a Go builtin (not shadowed).
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return true // no type info: assume the spelling means the builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// importedPackage returns the imported package name sel.X refers to
// ("fmt", "log", ...) or "" when sel is not a package selector.
func importedPackage(pkg *Package, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isStringExpr reports whether e's type is (an alias of) string.
func isStringExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
