package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"regexp"
	"strings"
	"testing"
)

// testFset and testImporter are shared across fixtures so the stdlib
// packages a fixture imports (fmt, ...) are type-checked once.
var (
	testFset     = token.NewFileSet()
	testImporter = importer.ForCompiler(testFset, "source", nil)
)

// loadFixture type-checks one in-memory source file under the given
// import path and file name (both matter: rules scope by path and by
// file base name).
func loadFixture(t *testing.T, path, filename, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(testFset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	var imp types.Importer
	for _, spec := range f.Imports {
		_ = spec
		imp = testImporter
	}
	pkg, err := TypeCheck(path, testFset, []*ast.File{f}, imp)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return pkg
}

// runRule applies a single rule (with suppression) to a fixture.
func runRule(t *testing.T, rule string, pkg *Package) []Finding {
	t.Helper()
	as, err := ByName(rule)
	if err != nil {
		t.Fatalf("ByName(%q): %v", rule, err)
	}
	return Run([]*Package{pkg}, as)
}

func TestFindingFormat(t *testing.T) {
	pkg := loadFixture(t, "pmpr/internal/fake", "fake.go", `package fake
func f() { panic("boom") }
`)
	fs := runRule(t, "panic", pkg)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	// The driver contract: "file:line: rule: message".
	want := regexp.MustCompile(`^fake\.go:2: panic: .+$`)
	if !want.MatchString(fs[0].String()) {
		t.Errorf("finding %q does not match file:line: rule: message", fs[0].String())
	}
}

func TestSuppression(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"same-line", `package fake
func f() { panic("x") } //pmvet:ignore panic -- fixture rationale
`, 0},
		{"line-above", `package fake
func f() {
	//pmvet:ignore panic
	panic("x")
}
`, 0},
		{"wrong-rule", `package fake
func f() {
	//pmvet:ignore floateq
	panic("x")
}
`, 1},
		{"multi-rule-list", `package fake
func f() {
	//pmvet:ignore floateq,panic -- two rules at once
	panic("x")
}
`, 0},
		{"too-far-above", `package fake
//pmvet:ignore panic
func f() {
	panic("x")
}
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, "pmpr/internal/fake", "fake.go", tc.src)
			if got := runRule(t, "panic", pkg); len(got) != tc.want {
				t.Errorf("want %d findings, got %v", tc.want, got)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nosuchrule"); err == nil || !strings.Contains(err.Error(), "nosuchrule") {
		t.Errorf("unknown rule: want naming error, got %v", err)
	}
	as, err := ByName("panic, doc")
	if err != nil || len(as) != 2 {
		t.Errorf("subset: want 2 analyzers, got %v (%v)", as, err)
	}
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Errorf("empty list: want all analyzers, got %d (%v)", len(all), err)
	}
}

func TestRunSortsFindings(t *testing.T) {
	pkg := loadFixture(t, "pmpr/internal/fake", "fake.go", `package fake
func b() { panic("late") }
func a() { panic("early") }
`)
	fs := runRule(t, "panic", pkg)
	if len(fs) != 2 || fs[0].Pos.Line > fs[1].Pos.Line {
		t.Errorf("findings not sorted by line: %v", fs)
	}
}
