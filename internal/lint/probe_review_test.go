package lint

import "testing"

// Probe 1: break inside a switch nested in a loop — Go semantics: break
// exits the switch, not the loop. The lock is balanced on every real path.
func TestProbeLockbalanceSwitchBreakInLoop(t *testing.T) {
	src := `package p

import "sync"

type s struct{ mu sync.Mutex }

func (x *s) f(vals []int) {
	for _, v := range vals {
		x.mu.Lock()
		switch v {
		case 1:
			break
		case 2:
		}
		x.mu.Unlock()
	}
}
`
	pkg := loadFixture(t, "pmpr/internal/p", "p.go", src)
	fs := runRule(t, "lockbalance", pkg)
	if len(fs) != 0 {
		t.Errorf("balanced lock with switch-break: want 0 findings, got %v", fs)
	}
}

// Probe 2: two RegisterKernel calls in ONE function — does edge dedup
// drop the second call site (and so the second kernel type)?
func TestProbeTwoRegistrationsOneFunc(t *testing.T) {
	src := `package core

type Kernel interface{ Iterate() }

func RegisterKernel(k Kernel) {}

type a struct{}
func (a) Iterate() {}
type b struct{}
func (b) Iterate() {}

func init() {
	RegisterKernel(a{})
	RegisterKernel(b{})
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "core.go", src)
	m := NewModule([]*Package{pkg})
	kts := registeredKernelTypes(m)
	if len(kts) != 2 {
		t.Errorf("want both registered kernel types discovered, got %d: %v", len(kts), kts)
	}
}
