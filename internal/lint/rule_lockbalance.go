package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockbalanceRule checks that every sync.Mutex/RWMutex acquired in a
// function is released on every exit path — either by a matching
// Unlock on each path or by a deferred Unlock. The engine's hottest
// mutexes (the journal ring, the scheduler's sleep lock) are taken on
// paths with several early returns; one missed Unlock on a rare branch
// deadlocks the whole pool the next time that branch is hit.
//
// The check is a small abstract interpretation over the AST: it tracks
// the multiset of held locks (keyed by the receiver expression, e.g.
// "w.p.mu") through straight-line code, requires both arms of a branch
// to agree on what is held, requires loop bodies to preserve the
// held-set (continue included), and at each return compares held
// against the deferred releases. Functions using control flow the
// interpreter cannot follow (goto, labeled branches, locks on
// non-stable expressions) are skipped entirely rather than guessed at
// — per-function soundness over coverage. Unlocks of locks the
// function never acquired are ignored: unlock-helper functions (and
// callees that release a caller's lock) are a legitimate pattern the
// caller's own balance covers.
type lockbalanceRule struct{}

func (lockbalanceRule) Name() string { return "lockbalance" }
func (lockbalanceRule) Doc() string {
	return "every Lock/RLock must be released on all return paths or deferred"
}

func (r lockbalanceRule) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			la := &lockAnalysis{pkg: pkg, rule: r.Name(), deferred: map[string]bool{}}
			end := la.walkBlock(body, lockState{held: map[string]int{}}, nil)
			if !la.bailed {
				la.checkExit(body.Rbrace, end)
				out = append(out, la.findings...)
			}
			// Literals inside are analyzed as their own functions by this
			// same Inspect; their lock state is independent.
			return true
		})
	}
	return out
}

// lockState is the abstract state at one program point: how many times
// each lock key is held, and whether the point is reachable.
type lockState struct {
	held map[string]int
	dead bool
}

func (s lockState) clone() lockState {
	h := make(map[string]int, len(s.held))
	for k, v := range s.held {
		if v != 0 {
			h[k] = v
		}
	}
	return lockState{held: h, dead: s.dead}
}

func (s lockState) equal(o lockState) bool {
	for k, v := range s.held {
		if v != 0 && o.held[k] != v {
			return false
		}
	}
	for k, v := range o.held {
		if v != 0 && s.held[k] != v {
			return false
		}
	}
	return true
}

// loopCtx carries the enclosing loop's entry state for continue/break
// discipline.
type loopCtx struct {
	entry  lockState
	breaks []lockState
}

// lockAnalysis interprets one function body.
type lockAnalysis struct {
	pkg      *Package
	rule     string
	deferred map[string]bool
	findings []Finding
	bailed   bool
}

// checkExit reports locks held — net of deferred unlocks — at an exit
// point.
func (la *lockAnalysis) checkExit(pos token.Pos, s lockState) {
	if s.dead || la.bailed {
		return
	}
	var leaked []string
	for k, v := range s.held {
		if v > 0 && !la.deferred[k] {
			leaked = append(leaked, k)
		}
	}
	sort.Strings(leaked)
	for _, k := range leaked {
		la.findings = append(la.findings, Finding{
			Pos:  la.pkg.Fset.Position(pos),
			Rule: la.rule,
			Msg:  k + " is still held on this return path (unlock it or defer the unlock)",
		})
	}
}

// walkBlock interprets a statement list, returning the fall-through
// state.
func (la *lockAnalysis) walkBlock(b *ast.BlockStmt, s lockState, loop *loopCtx) lockState {
	for _, st := range b.List {
		if la.bailed {
			return s
		}
		s = la.walkStmt(st, s, loop)
	}
	return s
}

// walkStmt interprets one statement.
func (la *lockAnalysis) walkStmt(st ast.Stmt, s lockState, loop *loopCtx) lockState {
	switch st := st.(type) {
	case *ast.ExprStmt:
		la.evalExpr(st.X, &s)
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt:
		// Lock/Unlock never appear as assignment values in this
		// codebase; lock calls nested in RHS expressions would be
		// side effects we'd miss, so scan for them and bail if found.
		la.bailIfLockCallInside(st)
	case *ast.DeferStmt:
		la.recordDefer(st.Call)
	case *ast.ReturnStmt:
		la.checkExit(st.Pos(), s)
		s.dead = true
	case *ast.BlockStmt:
		s = la.walkBlock(st, s, loop)
	case *ast.IfStmt:
		if st.Init != nil {
			la.bailIfLockCallInside(st.Init)
		}
		thenEnd := la.walkBlock(st.Body, s.clone(), loop)
		elseEnd := s.clone()
		if st.Else != nil {
			elseEnd = la.walkStmt(st.Else, s.clone(), loop)
		}
		s = la.merge(st.Pos(), thenEnd, elseEnd)
	case *ast.ForStmt:
		if st.Init != nil {
			la.bailIfLockCallInside(st.Init)
		}
		entry := s.clone()
		ctx := &loopCtx{entry: entry}
		bodyEnd := la.walkBlock(st.Body, entry.clone(), ctx)
		if la.bailed {
			return s
		}
		// The body must preserve the held-set so iteration 2 starts
		// where iteration 1 did.
		if !bodyEnd.dead && !bodyEnd.equal(entry) {
			la.bail()
			return s
		}
		// After the loop: reachable via the condition (if any) or via
		// break. An infinite for with no breaks never falls through.
		after := entry.clone()
		after.dead = st.Cond == nil && len(ctx.breaks) == 0
		for _, b := range ctx.breaks {
			if after.dead {
				after = b.clone()
			} else if !after.equal(b) {
				la.bail()
				return s
			}
		}
		s = after
	case *ast.RangeStmt:
		entry := s.clone()
		ctx := &loopCtx{entry: entry}
		bodyEnd := la.walkBlock(st.Body, entry.clone(), ctx)
		if la.bailed {
			return s
		}
		if !bodyEnd.dead && !bodyEnd.equal(entry) {
			la.bail()
			return s
		}
		after := entry.clone()
		for _, b := range ctx.breaks {
			if !after.equal(b) {
				la.bail()
				return s
			}
		}
		s = after
	case *ast.BranchStmt:
		if st.Label != nil || st.Tok == token.GOTO {
			la.bail()
			return s
		}
		switch st.Tok {
		case token.FALLTHROUGH:
			// Cases are modeled as independent branches; fallthrough
			// breaks that model.
			la.bail()
			return s
		case token.CONTINUE:
			if loop == nil {
				la.bail()
				return s
			}
			if !s.dead && !s.equal(loop.entry) {
				la.bail()
				return s
			}
			s.dead = true
		case token.BREAK:
			if loop == nil {
				// break out of a switch/select: treated by the
				// switch walker as a normal case end.
				s.dead = true
				return s
			}
			if !s.dead {
				loop.breaks = append(loop.breaks, s.clone())
			}
			s.dead = true
		}
	case *ast.SwitchStmt:
		s = la.walkCases(st.Pos(), caseBodies(st.Body), s, loop)
	case *ast.TypeSwitchStmt:
		s = la.walkCases(st.Pos(), caseBodies(st.Body), s, loop)
	case *ast.SelectStmt:
		s = la.walkCases(st.Pos(), commBodies(st.Body), s, loop)
	case *ast.LabeledStmt:
		la.bail()
	case *ast.GoStmt:
		// The goroutine's lock state is its own; but a lock call as an
		// argument would be a side effect here.
		for _, a := range st.Call.Args {
			if _, ok := a.(*ast.FuncLit); !ok {
				la.bailIfLockCallInside(a)
			}
		}
	}
	return s
}

// walkCases interprets switch/select cases as parallel branches: every
// live case end must agree; a caseless default path (no default clause
// in a switch) means the pre-state is also a possible outcome.
func (la *lockAnalysis) walkCases(pos token.Pos, cases []caseBody, s lockState, loop *loopCtx) lockState {
	if len(cases) == 0 {
		return s
	}
	hasDefault := false
	var ends []lockState
	for _, c := range cases {
		if c.isDefault {
			hasDefault = true
		}
		end := s.clone()
		for _, st := range c.body {
			if la.bailed {
				return s
			}
			end = la.walkStmt(st, end, loop)
		}
		if !end.dead {
			ends = append(ends, end)
		}
	}
	if !hasDefault {
		// The switch may match nothing and fall through unchanged.
		ends = append(ends, s.clone())
	}
	if len(ends) == 0 {
		s.dead = true
		return s
	}
	out := ends[0]
	for _, e := range ends[1:] {
		out = la.merge(pos, out, e)
	}
	return out
}

type caseBody struct {
	body      []ast.Stmt
	isDefault bool
}

func caseBodies(b *ast.BlockStmt) []caseBody {
	var out []caseBody
	for _, st := range b.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			out = append(out, caseBody{body: cc.Body, isDefault: cc.List == nil})
		}
	}
	return out
}

func commBodies(b *ast.BlockStmt) []caseBody {
	var out []caseBody
	for _, st := range b.List {
		if cc, ok := st.(*ast.CommClause); ok {
			out = append(out, caseBody{body: cc.Body, isDefault: cc.Comm == nil})
		}
	}
	return out
}

// merge joins two branch ends: dead branches drop out; live branches
// must agree or the function is bailed.
func (la *lockAnalysis) merge(pos token.Pos, a, b lockState) lockState {
	switch {
	case a.dead && b.dead:
		a.dead = true
		return a
	case a.dead:
		return b
	case b.dead:
		return a
	case a.equal(b):
		return a
	default:
		la.bail()
		return a
	}
}

func (la *lockAnalysis) bail() { la.bailed = true }

// evalExpr applies the lock effects of an expression statement.
func (la *lockAnalysis) evalExpr(e ast.Expr, s *lockState) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// A plain call: a lock call could hide in its arguments.
		la.bailIfLockCallInside(e)
		return
	}
	if !isSyncLockRecv(la.pkg, sel) {
		la.bailIfLockCallInside(e)
		return
	}
	key := stableExprKey(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if key == "" {
			la.bail()
			return
		}
		s.held[key]++
	case "Unlock", "RUnlock":
		if key == "" {
			la.bail()
			return
		}
		if s.held[key] > 0 {
			s.held[key]--
		}
		// Releasing a lock this function never took is the
		// unlock-helper pattern; ignore it.
	}
}

// recordDefer registers deferred unlocks: `defer mu.Unlock()` directly,
// or unlock calls inside a deferred function literal.
func (la *lockAnalysis) recordDefer(call *ast.CallExpr) {
	record := func(c *ast.CallExpr) {
		sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
		if !ok || !isSyncLockRecv(la.pkg, sel) {
			return
		}
		if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
			return
		}
		if key := stableExprKey(sel.X); key != "" {
			la.deferred[key] = true
		}
	}
	record(call)
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				record(c)
			}
			return true
		})
	}
}

// bailIfLockCallInside bails the function when a Lock/Unlock call
// hides somewhere the interpreter does not model (assignment RHS,
// call arguments).
func (la *lockAnalysis) bailIfLockCallInside(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		if la.bailed {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false // its own function, analyzed separately
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "Unlock", "RLock", "RUnlock":
				if isSyncLockRecv(la.pkg, sel) {
					la.bail()
					return false
				}
			}
		}
		return true
	})
}

// isSyncLockRecv reports whether the selector's receiver is a
// sync.Mutex or sync.RWMutex (directly or via pointer).
func isSyncLockRecv(pkg *Package, sel *ast.SelectorExpr) bool {
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// stableExprKey renders a lock receiver as a stable key ("w.p.mu"), or
// "" when the expression involves calls/indexing the interpreter
// cannot treat as a constant location.
func stableExprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := stableExprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return stableExprKey(e.X)
	default:
		return ""
	}
}
