package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxfirstRule enforces the pipeline's cancellation conventions:
//
//  1. Wherever a signature takes a context.Context, it is the first
//     parameter (after the receiver) — the position Go APIs reserve for
//     it, and the one that keeps call sites greppable as the context is
//     threaded from Engine.Run down through the scheduler.
//  2. internal/* library code never mints its own root context with
//     context.Background() or context.TODO(): a fresh root silently
//     detaches the work below it from the caller's cancellation, which
//     is exactly the bug the staged pipeline exists to prevent.
//     Commands and examples own the process lifetime, so they are
//     exempt and create the root (usually via signal.NotifyContext).
type ctxfirstRule struct{}

func (ctxfirstRule) Name() string { return "ctxfirst" }
func (ctxfirstRule) Doc() string {
	return "context.Context must be the first parameter; internal/* must not call context.Background()/TODO()"
}

// isContextType reports whether the field's declared type is exactly
// context.Context.
func isContextType(pkg *Package, expr ast.Expr) bool {
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	return types.TypeString(t, nil) == "context.Context"
}

// checkSignature reports a finding when a context.Context parameter sits
// at any position but the first.
func (r ctxfirstRule) checkSignature(pkg *Package, ft *ast.FuncType, out *[]Finding) {
	if ft.Params == nil {
		return
	}
	flat := 0 // flattened parameter index ("a, b int" is two)
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContextType(pkg, field.Type) && flat > 0 {
			pkg.findingf(out, field, r.Name(),
				"context.Context must be the first parameter, found at position %d", flat+1)
		}
		flat += n
	}
}

func (r ctxfirstRule) Check(pkg *Package) []Finding {
	internal := strings.Contains(pkg.Path, "internal/")
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				// Covers func declarations, literals, interface methods,
				// and named function types alike.
				r.checkSignature(pkg, n, &out)
			case *ast.CallExpr:
				if !internal {
					return true
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok || pkgName.Imported().Path() != "context" {
					return true
				}
				pkg.findingf(&out, n, r.Name(),
					"context.%s() in library code detaches callees from the caller's cancellation; accept a ctx parameter instead", sel.Sel.Name)
			}
			return true
		})
	}
	return out
}
