// Package checkpoint persists per-window PageRank results durably so a
// long postmortem sweep survives crashes and operator interrupts: the
// solve stage writes each window's record as it completes, and a
// resumed run skips every window already on disk, warm-starting
// successors from the checkpointed rank vectors.
//
// The on-disk layout is one directory per run:
//
//	manifest.pmck          — run manifest (spec, kernel, partition hash)
//	window-00000042.pmck   — one record per completed window
//
// Records use a little-endian binary codec with a CRC-32C trailer;
// decoding rejects truncated, oversized, or bit-flipped input, so a
// torn write (despite the atomic temp+rename protocol) or disk
// corruption surfaces as an error and the window is simply re-solved.
// A resumed run validates the manifest first: a checkpoint taken under
// a different window spec, kernel, partitioning, or iteration option
// set never silently mixes with the new run.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pmpr/internal/fault"
)

const (
	manifestMagic = "PMCM"
	windowMagic   = "PMCW"
	codecVersion  = 1
	manifestName  = "manifest.pmck"
	windowGlob    = "window-*.pmck"
)

// Injection points covering checkpoint IO (see internal/fault).
const (
	PointWriteManifest = "checkpoint.write_manifest"
	PointWriteWindow   = "checkpoint.write_window"
	PointReadWindow    = "checkpoint.read_window"
)

func init() {
	fault.RegisterPoint(PointWriteManifest, "checkpoint manifest write (atomic temp+rename)")
	fault.RegisterPoint(PointWriteWindow, "per-window checkpoint record write")
	fault.RegisterPoint(PointReadWindow, "per-window checkpoint record load during resume")
}

// castagnoli is the CRC-32C table shared by encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every decode failure caused by damaged
// bytes (bad magic, truncation, length mismatch, CRC mismatch), as
// opposed to an unsupported version.
var ErrCorrupt = errors.New("checkpoint: corrupt record")

// Manifest identifies the run a checkpoint belongs to. Two runs may
// share checkpoints iff their manifests are equal: same window
// sequence, kernel, multi-window partitioning, iteration options, and
// input shape.
type Manifest struct {
	// SpecT0, SpecDelta, SpecSlide, SpecCount are the window sequence.
	SpecT0    int64
	SpecDelta int64
	SpecSlide int64
	SpecCount int
	// Kernel is the registry name of the solving kernel.
	Kernel string
	// NumMultiWindows is the partition count.
	NumMultiWindows int
	// PartitionHash fingerprints the exact window->multi-window
	// assignment (boundaries), so balanced vs uniform partitionings of
	// the same count do not mix.
	PartitionHash uint64
	// NumVertices is the vertex universe size.
	NumVertices int32
	// Directed records the edge-direction handling.
	Directed bool
	// PartialInit records warm-start chaining (it changes the results'
	// exact bits, so resumed runs must agree on it).
	PartialInit bool
	// Alpha, Tol, MaxIter are the PageRank iteration options.
	Alpha   float64
	Tol     float64
	MaxIter int
}

// HashPartition fingerprints a window partition given each
// multi-window graph's [lo, hi) global window range, flattened as
// pairs: lo0, hi0, lo1, hi1, ...
func HashPartition(bounds []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, b := range bounds {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(b)))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Window is one completed window's checkpointed result.
type Window struct {
	// Index is the global window index.
	Index int
	// Iterations, Converged, UsedPartialInit, ActiveVertices,
	// FinalResidual, WallSeconds mirror core.WindowResult.
	Iterations      int
	Converged       bool
	UsedPartialInit bool
	ActiveVertices  int32
	FinalResidual   float64
	WallSeconds     float64
	// Ranks is the window's local-id rank vector.
	Ranks []float64
}

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) seal() []byte {
	e.u32(crc32.Checksum(e.buf, castagnoli))
	return e.buf
}

type decoder struct {
	buf []byte
	off int
	err error
}

// open validates magic, version, and the CRC trailer up front, then
// positions the decoder after the version field.
func (d *decoder) open(magic string) {
	if len(d.buf) < len(magic)+8 {
		d.err = fmt.Errorf("%w: %d bytes is shorter than any record", ErrCorrupt, len(d.buf))
		return
	}
	if string(d.buf[:len(magic)]) != magic {
		d.err = fmt.Errorf("%w: bad magic %q, want %q", ErrCorrupt, d.buf[:len(magic)], magic)
		return
	}
	body, trailer := d.buf[:len(d.buf)-4], d.buf[len(d.buf)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		d.err = fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
		return
	}
	d.buf = body
	d.off = len(magic)
	if v := d.u32(); d.err == nil && v != codecVersion {
		d.err = fmt.Errorf("checkpoint: unsupported version %d (want %d)", v, codecVersion)
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated at offset %d (need %d of %d bytes)", ErrCorrupt, d.off, n, len(d.buf))
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// close rejects records with bytes beyond the decoded fields.
func (d *decoder) close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// EncodeManifest renders m in the binary manifest codec.
func EncodeManifest(m Manifest) []byte {
	e := &encoder{buf: append([]byte{}, manifestMagic...)}
	e.u32(codecVersion)
	e.u64(uint64(m.SpecT0))
	e.u64(uint64(m.SpecDelta))
	e.u64(uint64(m.SpecSlide))
	e.u32(uint32(m.SpecCount))
	e.str(m.Kernel)
	e.u32(uint32(m.NumMultiWindows))
	e.u64(m.PartitionHash)
	e.u32(uint32(m.NumVertices))
	var flags uint8
	if m.Directed {
		flags |= 1
	}
	if m.PartialInit {
		flags |= 2
	}
	e.u8(flags)
	e.f64(m.Alpha)
	e.f64(m.Tol)
	e.u32(uint32(m.MaxIter))
	return e.seal()
}

// DecodeManifest parses the binary manifest codec.
func DecodeManifest(b []byte) (Manifest, error) {
	d := &decoder{buf: b}
	d.open(manifestMagic)
	var m Manifest
	m.SpecT0 = int64(d.u64())
	m.SpecDelta = int64(d.u64())
	m.SpecSlide = int64(d.u64())
	m.SpecCount = int(int32(d.u32()))
	m.Kernel = d.str()
	m.NumMultiWindows = int(int32(d.u32()))
	m.PartitionHash = d.u64()
	m.NumVertices = int32(d.u32())
	flags := d.u8()
	if d.err == nil && flags&^uint8(3) != 0 {
		d.err = fmt.Errorf("%w: unknown manifest flag bits %#x", ErrCorrupt, flags)
	}
	m.Directed = flags&1 != 0
	m.PartialInit = flags&2 != 0
	m.Alpha = d.f64()
	m.Tol = d.f64()
	m.MaxIter = int(int32(d.u32()))
	if err := d.close(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// EncodeWindow renders w in the binary window codec.
func EncodeWindow(w *Window) []byte {
	e := &encoder{buf: append([]byte{}, windowMagic...)}
	e.u32(codecVersion)
	e.u64(uint64(w.Index))
	e.u32(uint32(w.Iterations))
	var flags uint8
	if w.Converged {
		flags |= 1
	}
	if w.UsedPartialInit {
		flags |= 2
	}
	e.u8(flags)
	e.u32(uint32(w.ActiveVertices))
	e.f64(w.FinalResidual)
	e.f64(w.WallSeconds)
	e.u64(uint64(len(w.Ranks)))
	for _, r := range w.Ranks {
		e.f64(r)
	}
	return e.seal()
}

// DecodeWindow parses the binary window codec. Corrupt input (bad
// magic, truncation, CRC mismatch, implausible lengths) errors with
// ErrCorrupt in the chain; it never panics or short-reads.
func DecodeWindow(b []byte) (*Window, error) {
	d := &decoder{buf: b}
	d.open(windowMagic)
	w := &Window{}
	w.Index = int(int64(d.u64()))
	w.Iterations = int(int32(d.u32()))
	flags := d.u8()
	if d.err == nil && flags&^uint8(3) != 0 {
		d.err = fmt.Errorf("%w: unknown window flag bits %#x", ErrCorrupt, flags)
	}
	w.Converged = flags&1 != 0
	w.UsedPartialInit = flags&2 != 0
	w.ActiveVertices = int32(d.u32())
	w.FinalResidual = d.f64()
	w.WallSeconds = d.f64()
	n := d.u64()
	if d.err == nil {
		// Bound the rank count by the remaining bytes before allocating:
		// a corrupt length must fail, not OOM.
		if remaining := len(d.buf) - d.off; n > uint64(remaining/8) {
			d.err = fmt.Errorf("%w: rank count %d exceeds remaining %d bytes", ErrCorrupt, n, remaining)
		}
	}
	if d.err == nil && n > 0 {
		w.Ranks = make([]float64, n)
		for i := range w.Ranks {
			w.Ranks[i] = d.f64()
		}
	}
	if w.Index < 0 {
		d.err = fmt.Errorf("%w: negative window index %d", ErrCorrupt, w.Index)
	}
	if err := d.close(); err != nil {
		return nil, err
	}
	return w, nil
}

// Store is a checkpoint directory. Window writes are safe for
// concurrent use by multiple solver workers (each window index writes
// a distinct file through a distinct temp name).
type Store struct {
	dir string
}

// Open creates (if needed) and wraps a checkpoint directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory path.
func (s *Store) Dir() string { return s.dir }

// writeAtomic writes data to path via a temp file in the same
// directory, fsyncs, and renames into place, so readers never observe
// a partial record.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WriteManifest atomically persists the run manifest.
func (s *Store) WriteManifest(m Manifest) error {
	if err := fault.Inject(PointWriteManifest); err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, manifestName), EncodeManifest(m))
}

// LoadManifest reads the run manifest; ok is false when the store has
// none yet.
func (s *Store) LoadManifest() (m Manifest, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("checkpoint: %w", err)
	}
	m, err = DecodeManifest(b)
	if err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// windowPath names window i's record file.
func (s *Store) windowPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("window-%08d.pmck", i))
}

// WriteWindow atomically persists one completed window.
func (s *Store) WriteWindow(w *Window) error {
	if err := fault.Inject(PointWriteWindow); err != nil {
		return err
	}
	return s.writeAtomic(s.windowPath(w.Index), EncodeWindow(w))
}

// LoadWindows reads every window record in the store. Corrupt or
// unreadable records are skipped — their windows will simply be
// re-solved — and reported in skipped by file name.
func (s *Store) LoadWindows() (windows map[int]*Window, skipped []string, err error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, windowGlob))
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	sort.Strings(paths)
	windows = make(map[int]*Window, len(paths))
	for _, path := range paths {
		if ferr := fault.Inject(PointReadWindow); ferr != nil {
			skipped = append(skipped, filepath.Base(path))
			continue
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			skipped = append(skipped, filepath.Base(path))
			continue
		}
		w, derr := DecodeWindow(b)
		if derr != nil {
			skipped = append(skipped, filepath.Base(path))
			continue
		}
		if !indexMatchesName(path, w.Index) {
			// A record renamed onto the wrong index would resume the
			// wrong window; treat it as corruption.
			skipped = append(skipped, filepath.Base(path))
			continue
		}
		windows[w.Index] = w
	}
	return windows, skipped, nil
}

// indexMatchesName checks the record's embedded index against its file
// name.
func indexMatchesName(path string, index int) bool {
	base := filepath.Base(path)
	num := strings.TrimSuffix(strings.TrimPrefix(base, "window-"), ".pmck")
	n, err := strconv.Atoi(num)
	return err == nil && n == index
}

// Clear removes the manifest and every window record (used when a
// fresh, non-resuming run reuses a checkpoint directory).
func (s *Store) Clear() error {
	paths, err := filepath.Glob(filepath.Join(s.dir, windowGlob))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	paths = append(paths, filepath.Join(s.dir, manifestName))
	for _, path := range paths {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return nil
}
