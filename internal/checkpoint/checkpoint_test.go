package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pmpr/internal/fault"
)

func testManifest() Manifest {
	return Manifest{
		SpecT0: -17, SpecDelta: 160, SpecSlide: 90, SpecCount: 12,
		Kernel: "spmm", NumMultiWindows: 3, PartitionHash: 0xdeadbeefcafe,
		NumVertices: 512, Directed: true, PartialInit: true,
		Alpha: 0.15, Tol: 1e-8, MaxIter: 100,
	}
}

func testWindow(idx int) *Window {
	ranks := make([]float64, 7)
	for i := range ranks {
		ranks[i] = 1.0 / float64(i+idx+1)
	}
	return &Window{
		Index: idx, Iterations: 23, Converged: true, UsedPartialInit: idx > 0,
		ActiveVertices: 7, FinalResidual: 3.5e-9, WallSeconds: 0.0125, Ranks: ranks,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got != m {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestWindowRoundTrip(t *testing.T) {
	w := testWindow(42)
	got, err := DecodeWindow(EncodeWindow(w))
	if err != nil {
		t.Fatalf("DecodeWindow: %v", err)
	}
	if got.Index != w.Index || got.Iterations != w.Iterations || got.Converged != w.Converged ||
		got.UsedPartialInit != w.UsedPartialInit || got.ActiveVertices != w.ActiveVertices ||
		got.FinalResidual != w.FinalResidual || got.WallSeconds != w.WallSeconds {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, w)
	}
	if len(got.Ranks) != len(w.Ranks) {
		t.Fatalf("ranks length %d, want %d", len(got.Ranks), len(w.Ranks))
	}
	for i := range w.Ranks {
		if got.Ranks[i] != w.Ranks[i] {
			t.Fatalf("rank[%d] = %v, want %v (must be bit-identical)", i, got.Ranks[i], w.Ranks[i])
		}
	}
}

func TestWindowRoundTripEmptyRanks(t *testing.T) {
	w := &Window{Index: 0}
	got, err := DecodeWindow(EncodeWindow(w))
	if err != nil {
		t.Fatalf("DecodeWindow: %v", err)
	}
	if got.Index != 0 || len(got.Ranks) != 0 {
		t.Fatalf("got %+v, want empty window 0", got)
	}
}

// TestDecodeRejectsEveryBitFlip flips each byte of valid encodings and
// requires the decoder to reject every mutation (the CRC trailer covers
// the whole record, so no flip may survive).
func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	wb := EncodeWindow(testWindow(3))
	mb := EncodeManifest(testManifest())
	for i := range wb {
		c := append([]byte{}, wb...)
		c[i] ^= 0x41
		if _, err := DecodeWindow(c); err == nil {
			t.Fatalf("DecodeWindow accepted a record with byte %d corrupted", i)
		}
	}
	for i := range mb {
		c := append([]byte{}, mb...)
		c[i] ^= 0x41
		if _, err := DecodeManifest(c); err == nil {
			t.Fatalf("DecodeManifest accepted a manifest with byte %d corrupted", i)
		}
	}
}

func TestDecodeRejectsTruncationAndGarbage(t *testing.T) {
	wb := EncodeWindow(testWindow(3))
	for _, n := range []int{0, 1, 4, 8, len(wb) / 2, len(wb) - 1} {
		if _, err := DecodeWindow(wb[:n]); err == nil {
			t.Fatalf("DecodeWindow accepted a %d-byte truncation", n)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
	if _, err := DecodeWindow(append(append([]byte{}, wb...), 0)); err == nil {
		t.Fatal("DecodeWindow accepted trailing garbage")
	}
	if _, err := DecodeWindow([]byte("PMEVnot a checkpoint")); err == nil {
		t.Fatal("DecodeWindow accepted a foreign magic")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "ck"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, ok, err := s.LoadManifest(); err != nil || ok {
		t.Fatalf("empty store LoadManifest = ok=%v err=%v, want absent", ok, err)
	}
	m := testManifest()
	if err := s.WriteManifest(m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, ok, err := s.LoadManifest()
	if err != nil || !ok || got != m {
		t.Fatalf("LoadManifest = %+v ok=%v err=%v", got, ok, err)
	}
	for _, idx := range []int{0, 3, 11} {
		if err := s.WriteWindow(testWindow(idx)); err != nil {
			t.Fatalf("WriteWindow(%d): %v", idx, err)
		}
	}
	windows, skipped, err := s.LoadWindows()
	if err != nil {
		t.Fatalf("LoadWindows: %v", err)
	}
	if len(skipped) != 0 || len(windows) != 3 {
		t.Fatalf("LoadWindows = %d windows, skipped %v", len(windows), skipped)
	}
	for _, idx := range []int{0, 3, 11} {
		if windows[idx] == nil || windows[idx].Index != idx {
			t.Fatalf("window %d missing or mis-indexed: %+v", idx, windows[idx])
		}
	}
	if err := s.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	windows, _, err = s.LoadWindows()
	if err != nil || len(windows) != 0 {
		t.Fatalf("after Clear: %d windows, err %v", len(windows), err)
	}
	if _, ok, _ := s.LoadManifest(); ok {
		t.Fatal("manifest survived Clear")
	}
}

// TestLoadWindowsSkipsCorruptRecords damages one record on disk and
// verifies the load skips (and reports) it while keeping the rest.
func TestLoadWindowsSkipsCorruptRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for idx := 0; idx < 3; idx++ {
		if err := s.WriteWindow(testWindow(idx)); err != nil {
			t.Fatalf("WriteWindow: %v", err)
		}
	}
	path := filepath.Join(s.Dir(), "window-00000001.pmck")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	windows, skipped, err := s.LoadWindows()
	if err != nil {
		t.Fatalf("LoadWindows: %v", err)
	}
	if len(windows) != 2 || windows[1] != nil {
		t.Fatalf("corrupt record not skipped: got %d windows (1 present: %v)", len(windows), windows[1] != nil)
	}
	if len(skipped) != 1 || skipped[0] != "window-00000001.pmck" {
		t.Fatalf("skipped = %v, want the corrupt record", skipped)
	}
}

// TestLoadWindowsRejectsRenamedRecord verifies a record whose embedded
// index disagrees with its file name is treated as corrupt: resuming
// it would restore the wrong window.
func TestLoadWindowsRejectsRenamedRecord(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.WriteWindow(testWindow(5)); err != nil {
		t.Fatalf("WriteWindow: %v", err)
	}
	from := filepath.Join(s.Dir(), "window-00000005.pmck")
	to := filepath.Join(s.Dir(), "window-00000009.pmck")
	if err := os.Rename(from, to); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	windows, skipped, err := s.LoadWindows()
	if err != nil {
		t.Fatalf("LoadWindows: %v", err)
	}
	if len(windows) != 0 || len(skipped) != 1 {
		t.Fatalf("renamed record not rejected: windows=%d skipped=%v", len(windows), skipped)
	}
}

// TestStoreFaultInjection arms the checkpoint IO fault points and
// verifies writes surface the injected error and reads skip the
// injected-faulty record.
func TestStoreFaultInjection(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// The store calls the package-level fault.Inject (Default registry);
	// arm Default and restore it after.
	defer fault.Reset()
	cancel := fault.Arm(fault.Rule{Point: PointWriteWindow, Mode: fault.ModeError, Count: 1})
	if err := s.WriteWindow(testWindow(0)); err == nil {
		t.Fatal("WriteWindow did not surface the injected error")
	}
	cancel()
	if err := s.WriteWindow(testWindow(0)); err != nil {
		t.Fatalf("WriteWindow after disarm: %v", err)
	}
	if err := s.WriteWindow(testWindow(1)); err != nil {
		t.Fatalf("WriteWindow: %v", err)
	}
	cancel = fault.Arm(fault.Rule{Point: PointReadWindow, Mode: fault.ModeError, Count: 1})
	windows, skipped, err := s.LoadWindows()
	cancel()
	if err != nil {
		t.Fatalf("LoadWindows: %v", err)
	}
	if len(windows) != 1 || len(skipped) != 1 {
		t.Fatalf("injected read fault: windows=%d skipped=%v, want 1 and 1", len(windows), skipped)
	}
}

func TestHashPartitionDistinguishesBoundaries(t *testing.T) {
	a := HashPartition([]int{0, 4, 4, 8})
	b := HashPartition([]int{0, 3, 3, 8})
	if a == b {
		t.Fatal("different partitions hashed equal")
	}
	if a != HashPartition([]int{0, 4, 4, 8}) {
		t.Fatal("hash is not deterministic")
	}
}
