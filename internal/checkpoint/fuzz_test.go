package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecodeWindow feeds arbitrary bytes to the window decoder. The
// decoder must never panic or OOM; when it does accept an input, a
// re-encode of the decoded window must reproduce the input exactly
// (the codec has a single canonical form, so acceptance implies
// integrity).
func FuzzDecodeWindow(f *testing.F) {
	f.Add(EncodeWindow(testWindow(0)))
	f.Add(EncodeWindow(testWindow(7)))
	f.Add(EncodeWindow(&Window{Index: 1 << 30}))
	f.Add([]byte("PMCW"))
	f.Add([]byte{})
	corrupt := EncodeWindow(testWindow(3))
	corrupt[len(corrupt)/2] ^= 1
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := DecodeWindow(data)
		if err != nil {
			return
		}
		if got := EncodeWindow(w); !bytes.Equal(got, data) {
			t.Fatalf("accepted input is not canonical:\n in  %x\n out %x", data, got)
		}
	})
}

// FuzzDecodeManifest is the manifest analogue of FuzzDecodeWindow.
func FuzzDecodeManifest(f *testing.F) {
	f.Add(EncodeManifest(testManifest()))
	f.Add(EncodeManifest(Manifest{}))
	f.Add([]byte("PMCM"))
	corrupt := EncodeManifest(testManifest())
	corrupt[8] ^= 0x10
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if got := EncodeManifest(m); !bytes.Equal(got, data) {
			t.Fatalf("accepted input is not canonical:\n in  %x\n out %x", data, got)
		}
	})
}

// FuzzWindowRoundTrip fuzzes the encode side: arbitrary field values
// must survive a round trip bit-identically.
func FuzzWindowRoundTrip(f *testing.F) {
	f.Add(3, 17, true, true, int32(40), 1e-9, 0.5, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(0, 0, false, false, int32(0), 0.0, 0.0, []byte{})
	f.Fuzz(func(t *testing.T, idx, iters int, conv, warm bool, active int32, resid, wall float64, rankBytes []byte) {
		if idx < 0 {
			idx = -idx
		}
		if idx < 0 { // -MinInt overflows back to MinInt
			idx = 0
		}
		ranks := make([]float64, len(rankBytes)/2)
		for i := range ranks {
			ranks[i] = float64(rankBytes[2*i])/255 + float64(rankBytes[2*i+1])
		}
		w := &Window{
			Index: idx, Iterations: int(int32(iters)), Converged: conv, UsedPartialInit: warm,
			ActiveVertices: active, FinalResidual: resid, WallSeconds: wall, Ranks: ranks,
		}
		got, err := DecodeWindow(EncodeWindow(w))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if got.Index != w.Index || got.Iterations != w.Iterations || len(got.Ranks) != len(w.Ranks) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, w)
		}
		for i := range ranks {
			if got.Ranks[i] != ranks[i] {
				t.Fatalf("rank[%d] not bit-identical", i)
			}
		}
	})
}
