package gen

import (
	"math/rand"
	"reflect"
	"testing"

	"pmpr/internal/analysis"
)

func TestAllProfilesGenerate(t *testing.T) {
	for _, name := range Names() {
		d, ok := Get(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		l, err := d.Generate(0.05, 1)
		if err != nil {
			t.Fatalf("%s: Generate: %v", name, err)
		}
		if l.Len() == 0 {
			t.Fatalf("%s: empty log", name)
		}
		// Sorted, in-range, and spanning roughly the declared period.
		prev := int64(-1)
		for i := 0; i < l.Len(); i++ {
			e := l.At(i)
			if e.T < prev {
				t.Fatalf("%s: unsorted at %d", name, i)
			}
			prev = e.T
			if e.U < 0 || e.U >= l.NumVertices() || e.V < 0 || e.V >= l.NumVertices() {
				t.Fatalf("%s: vertex out of range at %d", name, i)
			}
		}
		_, last, _ := l.TimeRange()
		span := int64(d.SpanDays) * Day
		if last > span {
			t.Fatalf("%s: last event %d beyond span %d", name, last, span)
		}
		if last < span/2 {
			t.Fatalf("%s: last event %d covers under half the span %d", name, last, span)
		}
		if len(d.SlidingOffsets) == 0 || len(d.WindowDays) == 0 {
			t.Fatalf("%s: missing Table 1 parameter grid", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, _ := Get("wikitalk")
	a, err := d.Generate(0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Generate(0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different logs")
	}
	c, err := d.Generate(0.03, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical logs")
	}
}

func TestScaleControlsSize(t *testing.T) {
	d, _ := Get("enron")
	small, _ := d.Generate(0.02, 1)
	large, _ := d.Generate(0.08, 1)
	if small.Len() >= large.Len() {
		t.Fatalf("scale did not grow the log: %d vs %d", small.Len(), large.Len())
	}
	if _, err := d.Generate(0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := d.Generate(-1, 1); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown profile found")
	}
}

// shapeStats summarizes a histogram: the peak-to-mean ratio and the
// ratio of last-quarter volume to first-quarter volume.
func shapeStats(t *testing.T, name string) (peakToMean, growthRatio float64) {
	t.Helper()
	d, _ := Get(name)
	l, err := d.Generate(0.1, 7)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	counts, _, _ := analysis.Histogram(l, 40)
	var sum, peak int64
	for _, c := range counts {
		sum += c
		if c > peak {
			peak = c
		}
	}
	mean := float64(sum) / float64(len(counts))
	var first, last int64
	q := len(counts) / 4
	for i := 0; i < q; i++ {
		first += counts[i]
		last += counts[len(counts)-1-i]
	}
	return float64(peak) / mean, float64(last+1) / float64(first+1)
}

func TestSpikyProfilesHavePeaks(t *testing.T) {
	// Enron and epinions are the spiky datasets of Fig. 4: their peak
	// bin must dwarf the mean. The growth datasets must be much
	// flatter.
	for _, name := range []string{"enron", "epinions"} {
		peak, _ := shapeStats(t, name)
		if peak < 4 {
			t.Errorf("%s: peak/mean = %v, want a pronounced spike (>= 4)", name, peak)
		}
	}
	for _, name := range []string{"wikitalk", "stackoverflow", "askubuntu"} {
		peak, _ := shapeStats(t, name)
		if peak > 4 {
			t.Errorf("%s: peak/mean = %v, growth profiles should be smooth (< 4)", name, peak)
		}
	}
}

func TestGrowthProfilesGrow(t *testing.T) {
	for _, name := range []string{"wikitalk", "stackoverflow", "askubuntu"} {
		_, growth := shapeStats(t, name)
		if growth < 2 {
			t.Errorf("%s: last/first quarter ratio = %v, want growth (>= 2)", name, growth)
		}
	}
	// Youtube is steady: closer to flat than the growth profiles.
	_, g := shapeStats(t, "youtube")
	if g > 4 {
		t.Errorf("youtube: ratio %v, want steady-ish", g)
	}
}

func TestBipartiteRespected(t *testing.T) {
	d, _ := Get("epinions")
	l, err := d.Generate(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Determine the user/item boundary the generator used.
	nUsers := int32(float64(int32(float64(d.BaseVertices)*mathSqrt(0.05))) * d.UserFrac)
	for i := 0; i < l.Len(); i++ {
		e := l.At(i)
		if e.U >= nUsers {
			t.Fatalf("event %d: source %d is not a user (< %d)", i, e.U, nUsers)
		}
		if e.V < nUsers {
			t.Fatalf("event %d: target %d is not an item (>= %d)", i, e.V, nUsers)
		}
	}
}

func mathSqrt(x float64) float64 {
	// tiny helper so the test mirrors Generate's vertex scaling
	lo, hi := 0.0, x+1
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if mid*mid < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func TestZipfSkew(t *testing.T) {
	z := newZipf(1000, 0.9)
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.sample(rng, 1000)]++
	}
	if counts[0] < counts[500]*5 {
		t.Fatalf("zipf not skewed: head %d vs mid %d", counts[0], counts[500])
	}
	// Prefix restriction must be respected.
	for i := 0; i < 1000; i++ {
		if v := z.sample(rng, 10); v >= 10 {
			t.Fatalf("sample %d outside limit 10", v)
		}
	}
}

func TestCustomProfile(t *testing.T) {
	d := Custom("sine", 5000, 500, 100, func(tau float64) float64 {
		if tau < 0.5 {
			return 0.1
		}
		return 1.0
	})
	l, err := d.Generate(1.0, 5)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if l.Len() != 5000 {
		t.Fatalf("len = %d", l.Len())
	}
	counts, _, _ := analysis.Histogram(l, 10)
	var firstHalf, secondHalf int64
	for i := 0; i < 5; i++ {
		firstHalf += counts[i]
		secondHalf += counts[5+i]
	}
	if secondHalf < firstHalf*5 {
		t.Fatalf("shape ignored: first=%d second=%d", firstHalf, secondHalf)
	}
	// Negative shape values are clamped, not fatal.
	neg := Custom("neg", 100, 50, 10, func(tau float64) float64 { return tau - 0.5 })
	if _, err := neg.Generate(1.0, 1); err != nil {
		t.Fatalf("negative-dipping shape rejected: %v", err)
	}
	// An all-negative shape is an error.
	bad := Custom("bad", 100, 50, 10, func(float64) float64 { return -1 })
	if _, err := bad.Generate(1.0, 1); err == nil {
		t.Fatal("non-positive shape accepted")
	}
}
