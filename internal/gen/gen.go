// Package gen generates the synthetic stand-ins for the paper's seven
// real event databases (Table 1). The SNAP / network-repository
// datasets are not redistributable inside this offline build, so each
// profile reproduces the property the evaluation depends on — the
// temporal distribution of events (paper Fig. 4) — over a preferential
// (Zipf-like) degree structure typical of the social graphs used:
//
//	ia-enron-email   quiet background + sharp spike (the 2001 scandal)
//	epinions         bipartite user–item ratings, one huge early burst
//	ca-cit-HepTh     irregular bursts over a long span
//	youtube-growth   high steady volume with bursty moments
//	wiki-talk        smooth growth
//	stackoverflow    strong smooth growth, largest volume
//	askubuntu        small smooth growth
//
// Generation is deterministic for a given (profile, scale, seed).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pmpr/internal/events"
)

// Day is the number of time units (seconds) per day; timestamps are in
// seconds so the paper's sliding offsets (43200 s, 86400 s, ...) apply
// directly.
const Day int64 = 86400

// Dataset describes one synthetic profile and the parameter grid the
// paper evaluates it under (Table 1).
type Dataset struct {
	// Name is the profile key (matches the paper's dataset name).
	Name string
	// Description summarizes the temporal shape being reproduced.
	Description string
	// BaseEvents and BaseVertices are the size at scale 1.0 (the paper's
	// sizes divided by roughly 50-100 so the suite runs on a laptop).
	BaseEvents   int
	BaseVertices int32
	// SpanDays is the dataset's time span.
	SpanDays int
	// Bipartite marks user–item graphs (epinions); UserFrac of the
	// vertices are sources, the rest targets.
	Bipartite bool
	UserFrac  float64
	// ZipfExp is the exponent of the degree-popularity distribution.
	ZipfExp float64
	// Growing makes the reachable vertex set expand with time (new
	// users joining), as in the growth-shaped datasets.
	Growing bool
	// SlidingOffsets and WindowDays are the paper's Table 1 parameter
	// grid for this dataset (seconds, days).
	SlidingOffsets []int64
	WindowDays     []float64

	shape func(tau float64) float64
}

func spike(center, width, amp float64) func(float64) float64 {
	return func(tau float64) float64 {
		d := (tau - center) / width
		return amp * math.Exp(-0.5*d*d)
	}
}

var profiles = []Dataset{
	{
		Name:        "enron",
		Description: "ia-enron-email: low background with sharp spikes around the scandal",
		BaseEvents:  60000, BaseVertices: 4000, SpanDays: 2500,
		ZipfExp:        0.9,
		SlidingOffsets: []int64{43200, 172800},
		WindowDays:     []float64{730, 1460},
		shape: func(tau float64) float64 {
			return 0.04 + spike(0.70, 0.025, 1.0)(tau) + spike(0.78, 0.02, 0.55)(tau) + spike(0.62, 0.03, 0.3)(tau)
		},
	},
	{
		Name:        "epinions",
		Description: "epinions-user-ratings: bipartite reviews with one huge early burst",
		BaseEvents:  140000, BaseVertices: 20000, SpanDays: 420,
		Bipartite: true, UserFrac: 0.4, ZipfExp: 0.85,
		SlidingOffsets: []int64{43200, 86400},
		WindowDays:     []float64{60, 90},
		shape: func(tau float64) float64 {
			return 0.03 + spike(0.22, 0.06, 1.0)(tau) + 0.25*math.Exp(-3*tau)
		},
	},
	{
		Name:        "hepth",
		Description: "ca-cit-HepTh: citation bursts, irregular over a long span",
		BaseEvents:  60000, BaseVertices: 7000, SpanDays: 2900,
		ZipfExp:        0.95,
		SlidingOffsets: []int64{43200, 86400, 172800},
		WindowDays:     []float64{10, 15, 90, 180, 730, 1460},
		shape: func(tau float64) float64 {
			s := 0.1 + 0.5*tau
			s += spike(0.35, 0.02, 0.8)(tau) + spike(0.55, 0.015, 1.0)(tau) +
				spike(0.72, 0.03, 0.6)(tau) + spike(0.9, 0.02, 0.9)(tau)
			return s
		},
	},
	{
		Name:        "youtube",
		Description: "youtube-growth: steady high volume, bursty by moments",
		BaseEvents:  120000, BaseVertices: 25000, SpanDays: 225,
		ZipfExp: 0.8, Growing: true,
		SlidingOffsets: []int64{43200, 86400},
		WindowDays:     []float64{60, 90},
		shape: func(tau float64) float64 {
			return 0.55 + 0.3*tau + spike(0.3, 0.02, 0.5)(tau) + spike(0.62, 0.015, 0.7)(tau)
		},
	},
	{
		Name:        "wikitalk",
		Description: "wiki-talk: smooth growth of communication volume",
		BaseEvents:  110000, BaseVertices: 18000, SpanDays: 1900,
		ZipfExp: 0.9, Growing: true,
		SlidingOffsets: []int64{43200, 86400, 172800, 259200},
		WindowDays:     []float64{10, 15, 90, 180},
		shape: func(tau float64) float64 {
			return math.Pow(0.08+tau, 1.6)
		},
	},
	{
		Name:        "stackoverflow",
		Description: "stackoverflow: strongest smooth growth, largest volume",
		BaseEvents:  250000, BaseVertices: 35000, SpanDays: 2600,
		ZipfExp: 0.85, Growing: true,
		SlidingOffsets: []int64{43200, 86400},
		WindowDays:     []float64{10, 15, 90, 180, 730},
		shape: func(tau float64) float64 {
			return 0.05 + tau*tau*1.2
		},
	},
	{
		Name:        "askubuntu",
		Description: "askubuntu: small, smoothly growing Q&A interactions",
		BaseEvents:  35000, BaseVertices: 7000, SpanDays: 2500,
		ZipfExp: 0.85, Growing: true,
		SlidingOffsets: []int64{86400, 172800},
		WindowDays:     []float64{90, 180},
		shape: func(tau float64) float64 {
			return 0.08 + 0.9*tau
		},
	},
}

// Names lists the available profiles in the paper's Table 1 order of
// appearance.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// Get returns the profile named name.
func Get(name string) (Dataset, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Dataset{}, false
}

// Generate produces the synthetic event log of profile d at the given
// scale (scale 1.0 = BaseEvents events). The log is time-sorted and
// deterministic in (d, scale, seed).
func (d Dataset) Generate(scale float64, seed int64) (*events.Log, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("gen: scale %v must be positive", scale)
	}
	m := int(float64(d.BaseEvents) * scale)
	if m < 1 {
		m = 1
	}
	n := int32(float64(d.BaseVertices) * math.Sqrt(scale))
	if n < 4 {
		n = 4
	}
	rng := rand.New(rand.NewSource(seed))
	span := int64(d.SpanDays) * Day

	// Inverse-CDF sampling of the temporal shape: stratified quantiles
	// give exactly m events, already time-sorted.
	const bins = 4096
	cdf := make([]float64, bins+1)
	for b := 0; b < bins; b++ {
		tau := (float64(b) + 0.5) / bins
		v := d.shape(tau)
		if v < 0 {
			v = 0
		}
		cdf[b+1] = cdf[b] + v
	}
	total := cdf[bins]
	if total <= 0 {
		return nil, fmt.Errorf("gen: profile %s has a non-positive shape", d.Name)
	}

	sampler := newZipf(n, d.ZipfExp)
	var nUsers int32
	if d.Bipartite {
		nUsers = int32(float64(n) * d.UserFrac)
		if nUsers < 2 {
			nUsers = 2
		}
		if nUsers > n-2 {
			nUsers = n - 2
		}
	}

	evs := make([]events.Event, m)
	for i := 0; i < m; i++ {
		q := (float64(i) + rng.Float64()) / float64(m) * total
		b := sort.SearchFloat64s(cdf, q)
		if b > 0 {
			b--
		}
		if b >= bins {
			b = bins - 1
		}
		frac := (q - cdf[b]) / (cdf[b+1] - cdf[b] + 1e-300)
		tau := (float64(b) + frac) / bins
		t := int64(tau * float64(span))

		// Growing datasets only draw from the vertices that have
		// "joined" so far; the reachable prefix expands with time.
		limit := n
		if d.Growing {
			limit = int32(float64(n) * (0.05 + 0.95*tau))
			if limit < 4 {
				limit = 4
			}
		}
		var u, v int32
		if d.Bipartite {
			uLimit, vLimit := nUsers, n-nUsers
			if d.Growing {
				uLimit = int32(float64(nUsers) * (0.05 + 0.95*tau))
				vLimit = limit - uLimit
			}
			u = sampler.sample(rng, uLimit)
			v = nUsers + sampler.sample(rng, vLimit)
		} else {
			u = sampler.sample(rng, limit)
			v = sampler.sample(rng, limit)
			for v == u {
				v = sampler.sample(rng, limit)
			}
		}
		evs[i] = events.Event{U: u, V: v, T: t}
	}
	return events.NewLogSorted(evs, n)
}

// zipf draws vertex ids with probability proportional to 1/(i+1)^s,
// restricted to a prefix [0, limit). A cumulative table plus binary
// search keeps draws O(log n) and allows the prefix restriction the
// growing profiles need (stdlib rand.Zipf supports neither).
type zipf struct {
	cum []float64
}

func newZipf(n int32, s float64) *zipf {
	cum := make([]float64, n+1)
	for i := int32(0); i < n; i++ {
		cum[i+1] = cum[i] + 1/math.Pow(float64(i+1), s)
	}
	return &zipf{cum: cum}
}

func (z *zipf) sample(rng *rand.Rand, limit int32) int32 {
	if limit < 1 {
		limit = 1
	}
	if limit > int32(len(z.cum)-1) {
		limit = int32(len(z.cum) - 1)
	}
	q := rng.Float64() * z.cum[limit]
	i := sort.SearchFloat64s(z.cum[:limit+1], q)
	if i > 0 {
		i--
	}
	if i >= int(limit) {
		i = int(limit) - 1
	}
	return int32(i)
}

// Custom builds a user-defined profile: a name, sizes, a time span, and
// a shape function over normalized time [0, 1]. The shape needs only
// relative magnitudes; it is normalized internally. Use it to model
// event databases beyond the paper's seven, e.g.:
//
//	d := gen.Custom("weekly", 50000, 5000, 140, func(tau float64) float64 {
//	    return 1 + 0.8*math.Sin(tau*140/7*2*math.Pi) // weekly rhythm
//	})
//	log, err := d.Generate(1.0, 42)
func Custom(name string, baseEvents int, baseVertices int32, spanDays int, shape func(tau float64) float64) Dataset {
	return Dataset{
		Name:           name,
		Description:    "custom profile",
		BaseEvents:     baseEvents,
		BaseVertices:   baseVertices,
		SpanDays:       spanDays,
		ZipfExp:        0.9,
		SlidingOffsets: []int64{86400},
		WindowDays:     []float64{float64(spanDays) / 10},
		shape:          shape,
	}
}
