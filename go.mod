module pmpr

go 1.22
