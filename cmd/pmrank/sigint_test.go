package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pmpr/internal/events"
	"pmpr/internal/gen"
)

// TestSIGINTPartialProgress drives the built binary end to end: start a
// long postmortem run, interrupt it, and require the cooperative
// shutdown contract — exit code 130 and the partial-progress line.
func TestSIGINTPartialProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pmrank")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	d, ok := gen.Get("wikitalk")
	if !ok {
		t.Fatal("wikitalk profile missing")
	}
	l, err := d.Generate(0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	evPath := filepath.Join(dir, "events.ev")
	f, err := os.Create(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := events.WriteText(f, l); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Thousands of tiny windows: the run takes many seconds, and a
	// cancel lands at a window boundary almost immediately.
	cmd := exec.Command(bin, "-in", evPath, "-delta-days", "90", "-slide", "21600",
		"-kernel", "spmm", "-mode", "nested", "-workers", "4")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("signal: %v", err)
	}
	err = cmd.Wait()
	if err == nil {
		t.Skipf("run finished before the interrupt; output:\n%s", out.String())
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v\n%s", err, out.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code = %d, want 130\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "partial progress:") {
		t.Fatalf("missing partial-progress message:\n%s", out.String())
	}
}
