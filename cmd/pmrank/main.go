// Command pmrank runs a postmortem PageRank analysis over a temporal
// event file: it derives the sliding-window sequence, computes PageRank
// for every window with the configured kernel/parallelism, and prints a
// per-window summary plus the top-k vertices of selected windows.
//
// Usage:
//
//	pmrank -in events.ev -delta-days 90 -slide 86400 \
//	       [-kernel spmm|spmv] [-mode nested|app|window] [-mw 6] [-grain 2] \
//	       [-partitioner auto|simple|static] [-no-partial] [-directed] \
//	       [-top 5] [-every 10] [-workers 0] [-out ranks.pmrs]
//	       [-model postmortem|offline|streaming|components|kcore]
//	       [-metrics-addr :8080] [-live] [-journal-out run.jsonl]
//	       [-trace-out run.trace.json]
//	       [-report-out report.json] [-discard-ranks]
//	       [-checkpoint-dir ckpt/] [-resume]
//
// With -metrics-addr and -live the run is observable while it executes:
// GET /status returns a JSON progress snapshot (phase, windows
// done/total, histogram summaries) and GET /events streams the run
// journal as Server-Sent Events, resumable via Last-Event-ID. cmd/pmtop
// is a terminal watcher for these endpoints. -journal-out writes the
// same event stream as JSON lines.
//
// With -checkpoint-dir every solved window is flushed to disk as it
// completes; an interrupted run can then be re-invoked with -resume to
// restore the finished windows and solve only the rest. Deterministic
// fault injection is armed via the PMPR_FAULTPOINTS environment
// variable (see internal/fault).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"pmpr/internal/checkpoint"
	"pmpr/internal/cliutil"
	"pmpr/internal/closeness"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/kcore"
	"pmpr/internal/obs"
	"pmpr/internal/offline"
	"pmpr/internal/results"
	"pmpr/internal/sched"
	"pmpr/internal/streaming"
	"pmpr/internal/wcc"
)

func main() {
	var (
		in        = flag.String("in", "", "input event file (text or binary; '-' = stdin)")
		deltaDays = flag.Float64("delta-days", 90, "window size delta in days")
		slide     = flag.Int64("slide", 86400, "sliding offset sw in seconds")
		maxWin    = flag.Int("max-windows", 0, "cap the number of windows (0 = all)")
		ef        = cliutil.RegisterEngineFlags(flag.CommandLine)
		top       = flag.Int("top", 5, "top-k vertices to print per reported window")
		every     = flag.Int("every", 0, "report every n-th window (0 = auto)")
		model     = flag.String("model", "postmortem", "analysis: postmortem, offline, streaming, components, kcore or closeness")
		out       = flag.String("out", "", "write the rank series to this file (postmortem model only)")

		ckptDir = flag.String("checkpoint-dir", "", "flush each solved window to this directory (postmortem model only)")
		resume  = flag.Bool("resume", false, "restore windows already present in -checkpoint-dir instead of re-solving them")

		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		live         = flag.Bool("live", false, "also serve /status (JSON snapshot) and /events (SSE journal) on -metrics-addr")
		journalOut   = flag.String("journal-out", "", "write the run's event journal as JSON lines to this file (postmortem model only)")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON of the schedule (postmortem model only)")
		reportOut    = flag.String("report-out", "", "write the run report JSON (postmortem model only)")
		discardRanks = flag.Bool("discard-ranks", false, "drop rank vectors after convergence (timing-only runs)")
		version      = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("pmrank", obs.CollectBuildInfo())
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "pmrank: -in is required")
		os.Exit(2)
	}
	if *model != "postmortem" && (*traceOut != "" || *reportOut != "" || *discardRanks || *ckptDir != "" || *journalOut != "" || *live) {
		fmt.Fprintln(os.Stderr, "pmrank: -trace-out/-report-out/-discard-ranks/-checkpoint-dir/-journal-out/-live apply to the postmortem model only; ignoring")
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "pmrank: -resume requires -checkpoint-dir")
		os.Exit(2)
	}
	if *live && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "pmrank: -live requires -metrics-addr")
		os.Exit(2)
	}

	loadStart := time.Now()
	l, err := cliutil.ReadLog(*in)
	if err != nil {
		fatal(err)
	}
	if !ef.Directed {
		l = l.Symmetrize()
	}
	loadSeconds := time.Since(loadStart).Seconds()
	spec, err := events.Span(l, int64(*deltaDays*float64(gen.Day)), *slide)
	if err != nil {
		fatal(err)
	}
	if *maxWin > 0 && spec.Count > *maxWin {
		spec.Count = *maxWin
	}
	fmt.Printf("%d events over %d vertices; %d windows (delta=%.4gd, sw=%ds)\n",
		l.Len(), l.NumVertices(), spec.Count, *deltaDays, *slide)

	pool := sched.NewPool(ef.Workers)
	defer pool.Close()
	observing := *metricsAddr != "" || *traceOut != "" || *reportOut != ""
	if observing {
		pool.EnableMetrics(true)
	}
	// The journal exists whenever someone consumes it: an -out file, the
	// /events stream, or both (they share the same event sequence).
	var journal *obs.Journal
	var journalFile *os.File
	if *live || *journalOut != "" {
		journal = obs.NewJournal(0)
	}
	if *journalOut != "" {
		f, err := os.Create(*journalOut)
		if err != nil {
			fatal(err)
		}
		journalFile = f
		journal.SetSink(f)
	}
	closeJournal := func() {
		if journal == nil {
			return
		}
		if err := journal.CloseSink(); err != nil {
			fmt.Fprintf(os.Stderr, "pmrank: journal sink: %v\n", err)
		}
		if journalFile != nil {
			if err := journalFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "pmrank: %s: %v\n", *journalOut, err)
			}
			journalFile = nil
		}
	}
	defer closeJournal()

	// liveEng is set once the postmortem engine exists; /status may be
	// polled before that and reports "idle" until then.
	var liveEng atomic.Pointer[core.Engine]
	statusFn := func() obs.Status {
		st := obs.Status{Phase: "idle", LastSeq: journal.LastSeq()}
		eng := liveEng.Load()
		if eng == nil {
			return st
		}
		p := eng.Progress()
		st.Phase = p.Phase
		st.WindowsTotal = p.WindowsTotal
		st.WindowsDone = p.WindowsDone
		st.WindowsQuarantined = int(p.Quarantined)
		st.Retried = p.Retried
		st.Degraded = p.Degraded
		st.Resumed = p.Resumed
		h := eng.Histograms()
		st.Histograms = map[string]obs.HistogramSummary{
			"window_wall_seconds": h.WindowWall.Summary(),
			"window_iterations":   h.Iterations.Summary(),
			"window_residual":     h.Residual.Summary(),
		}
		return st
	}

	var reg *obs.Registry
	shutdownObs := func() {}
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		reg.Gauge("pmpr_events_total", "events in the loaded log", func() float64 { return float64(l.Len()) })
		reg.Gauge("pmpr_workers", "scheduler pool size", func() float64 { return float64(pool.NumWorkers()) })
		reg.Gauge("pmpr_sched_tasks_total", "fork-join leaf tasks executed", func() float64 { return float64(pool.Stats().TotalTasks()) })
		reg.Gauge("pmpr_sched_steals_total", "tasks obtained by stealing", func() float64 { return float64(pool.Stats().TotalSteals()) })
		reg.Gauge("pmpr_sched_splits_total", "range splits performed", func() float64 { return float64(pool.Stats().TotalSplits()) })
		mux := obs.NewMux(reg)
		if *live {
			obs.HandleLive(mux, journal, statusFn)
		}
		srv, err := obs.ServeHandler(*metricsAddr, mux)
		if err != nil {
			fatal(err)
		}
		// Graceful teardown with a short deadline: an in-flight scrape or
		// /events stream gets a moment to finish, but SIGINT still exits
		// promptly. Runs on the normal return path via the defer and
		// explicitly before the interrupted path's os.Exit.
		shutdownObs = func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "pmrank: metrics server shutdown: %v\n", err)
			}
		}
		defer shutdownObs()
		fmt.Printf("serving metrics on http://%s/ (/metrics, /debug/vars, /debug/pprof/)\n", srv.Addr())
		if *live {
			fmt.Printf("live progress on http://%s/status and http://%s/events\n", srv.Addr(), srv.Addr())
		}
	}
	step := *every
	if step == 0 {
		step = spec.Count / 10
		if step < 1 {
			step = 1
		}
	}

	// First SIGINT/SIGTERM cancels the solve cooperatively (the engine
	// stops at the next window/batch boundary); a second signal kills
	// the process the usual way because stop() restores the default
	// handlers once ctx is done.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	start := time.Now()
	switch *model {
	case "postmortem":
		cfg := core.DefaultConfig()
		ef.ApplyTo(&cfg)
		cfg.DiscardRanks = *discardRanks
		cfg.Journal = journal
		eng, err := core.NewEngine(l, spec, cfg, pool)
		if err != nil {
			fatal(err)
		}
		liveEng.Store(eng)
		if reg != nil {
			eng.FaultCounters().RegisterOn(reg, "pmpr_engine_fault")
			eng.Histograms().RegisterOn(reg, "pmpr_window")
		}
		if *ckptDir != "" {
			store, err := checkpoint.Open(*ckptDir)
			if err != nil {
				fatal(err)
			}
			restored, err := eng.SetCheckpoint(store, *resume)
			if err != nil {
				fatal(err)
			}
			if *resume {
				fmt.Printf("resuming from %s: %d/%d windows restored\n", *ckptDir, restored, spec.Count)
			} else {
				fmt.Printf("checkpointing to %s\n", *ckptDir)
			}
		}
		var tr *obs.Trace
		if *traceOut != "" {
			tr = obs.NewTrace()
			eng.SetTrace(tr)
		}
		s, err := eng.Run(ctx)
		if err != nil {
			var canceled *core.CanceledError
			if errors.As(err, &canceled) {
				fmt.Printf("pmrank: interrupted; partial progress: %d/%d windows solved\n",
					canceled.Completed, canceled.Total)
				if canceled.Checkpoint != "" {
					fmt.Printf("pmrank: completed windows checkpointed in %s; re-run with -resume to continue\n",
						canceled.Checkpoint)
				}
				// os.Exit skips the defers; flush the journal and drain the
				// obs server explicitly so the interrupt leaves clean state.
				closeJournal()
				shutdownObs()
				os.Exit(130)
			}
			fatal(err)
		}
		elapsed := time.Since(start)
		for w := 0; w < s.Len(); w += step {
			r := s.Window(w)
			fmt.Printf("window %4d [%d..%d]: |V|=%d iters=%d",
				w, spec.Start(w), spec.End(w), r.ActiveVertices, r.Iterations)
			if r.HasRanks() {
				fmt.Printf(" top%d=", *top)
				for _, rk := range r.TopK(*top) {
					fmt.Printf(" %d:%.4f", rk.Vertex, rk.Rank)
				}
			}
			fmt.Println()
		}
		fmt.Printf("postmortem: %d windows, %d total iterations, %.3fs (stored events %d, memory %.1f MB)\n",
			s.Len(), s.TotalIterations(), elapsed.Seconds(),
			eng.Temporal().TotalStoredEvents(), float64(eng.Temporal().MemoryBytes())/(1<<20))
		if s.Report != nil {
			if f := s.Report.Fault; f.Retried > 0 || f.Degraded > 0 || f.Resumed > 0 || len(f.Quarantined) > 0 {
				fmt.Printf("fault summary: %d retried, %d degraded, %d resumed, %d quarantined %v\n",
					f.Retried, f.Degraded, f.Resumed, len(f.Quarantined), f.Quarantined)
			}
		}
		if s.Report != nil {
			s.Report.SetPhase("load", loadSeconds)
			if *reportOut != "" {
				if err := s.Report.WriteJSONFile(*reportOut); err != nil {
					fatal(err)
				}
				fmt.Printf("run report written to %s\n", *reportOut)
			}
		}
		if *journalOut != "" {
			fmt.Printf("event journal written to %s (%d events)\n", *journalOut, journal.LastSeq())
		}
		if tr != nil {
			if err := tr.WriteFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Printf("schedule trace written to %s (%d events; load in Perfetto)\n", *traceOut, tr.Len())
		}
		if *out != "" {
			if s.Len() > 0 {
				if _, ok := s.Window(0).RankOK(0); !ok {
					fatal(fmt.Errorf("-out needs retained rank vectors; drop -discard-ranks"))
				}
			}
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			if err := results.Write(f, s.Export()); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("rank series written to %s\n", *out)
		}
	case "offline":
		cfg := offline.DefaultConfig()
		stats, err := offline.Run(l, spec, cfg, pool)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		total := 0
		for _, st := range stats {
			total += st.Iterations
		}
		fmt.Printf("offline: %d windows, %d total iterations, %.3fs\n", len(stats), total, elapsed.Seconds())
	case "streaming":
		cfg := streaming.DefaultConfig()
		cfg.Directed = ef.Directed
		r, err := streaming.NewRunner(l, spec, cfg, pool)
		if err != nil {
			fatal(err)
		}
		stats, err := r.Run()
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		total, ins, rem := 0, 0, 0
		for _, st := range stats {
			total += st.Iterations
			ins += st.Inserted
			rem += st.Removed
		}
		fmt.Printf("streaming: %d windows, %d total iterations, %d inserts, %d removes, %.3fs\n",
			len(stats), total, ins, rem, elapsed.Seconds())
	case "components":
		cfg := wcc.DefaultConfig()
		cfg.Partitioner = ef.SchedPartitioner()
		cfg.Grain = ef.Grain
		cfg.NumMultiWindows = ef.MW
		cfg.Directed = ef.Directed
		eng, err := wcc.NewEngine(l, spec, cfg, pool)
		if err != nil {
			fatal(err)
		}
		s, err := eng.Run()
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		for w := 0; w < s.Len(); w += step {
			r := s.Window(w)
			fmt.Printf("window %4d: |V|=%d components=%d largest=%d\n",
				w, r.ActiveVertices, r.Components, r.LargestSize)
		}
		fmt.Printf("components: %d windows, %.3fs\n", s.Len(), elapsed.Seconds())
	case "kcore":
		cfg := kcore.DefaultConfig()
		cfg.Partitioner = ef.SchedPartitioner()
		cfg.Grain = ef.Grain
		cfg.NumMultiWindows = ef.MW
		cfg.Directed = ef.Directed
		eng, err := kcore.NewEngine(l, spec, cfg, pool)
		if err != nil {
			fatal(err)
		}
		s, err := eng.Run()
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		for w := 0; w < s.Len(); w += step {
			r := s.Window(w)
			fmt.Printf("window %4d: |V|=%d maxcore=%d coresize=%d\n",
				w, r.ActiveVertices, r.MaxCore, r.MaxCoreSize)
		}
		fmt.Printf("kcore: %d windows, %.3fs\n", s.Len(), elapsed.Seconds())
	case "closeness":
		cfg := closeness.DefaultConfig()
		cfg.Partitioner = ef.SchedPartitioner()
		cfg.Grain = ef.Grain
		cfg.NumMultiWindows = ef.MW
		cfg.Directed = ef.Directed
		cfg.SampleSources = 16
		eng, err := closeness.NewEngine(l, spec, cfg, pool)
		if err != nil {
			fatal(err)
		}
		s, err := eng.Run()
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		for w := 0; w < s.Len(); w += step {
			r := s.Window(w)
			fmt.Printf("window %4d: |V|=%d top=%d score=%.3f (from %d sources)\n",
				w, r.ActiveVertices, r.Top, r.TopScore, r.SampledSources)
		}
		fmt.Printf("closeness: %d windows, %.3fs\n", s.Len(), elapsed.Seconds())
	default:
		fmt.Fprintf(os.Stderr, "pmrank: unknown model %q\n", *model)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pmrank: %v\n", err)
	os.Exit(1)
}
