package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmpr/internal/events"
	"pmpr/internal/gen"
)

// TestKillResumeBitIdentical drives the built binary through the crash
// story end to end: a checkpointing run is SIGKILLed mid-solve (no
// cooperative shutdown at all), then re-invoked with -resume. The
// resumed run must restore the completed windows instead of re-solving
// them and write a rank series byte-identical to an uninterrupted run.
func TestKillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pmrank")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	d, ok := gen.Get("wikitalk")
	if !ok {
		t.Fatal("wikitalk profile missing")
	}
	l, err := d.Generate(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	evPath := filepath.Join(dir, "events.ev")
	f, err := os.Create(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := events.WriteText(f, l); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Serial width-1 solving keeps the window sequence deterministic;
	// the window count stays small enough for the reference run to
	// finish quickly.
	args := []string{"-in", evPath, "-delta-days", "90", "-slide", "604800",
		"-kernel", "spmv", "-mode", "app", "-workers", "1"}

	refOut := filepath.Join(dir, "ref.pmrs")
	ref := exec.Command(bin, append(args, "-out", refOut)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}

	// Checkpointing run, slowed via injected delays so the SIGKILL
	// reliably lands mid-solve. Poll for flushed window files, then
	// kill without any chance of cleanup.
	ckDir := filepath.Join(dir, "ck")
	cmd := exec.Command(bin, append(args, "-checkpoint-dir", ckDir)...)
	cmd.Env = append(os.Environ(), "PMPR_FAULTPOINTS=core.solve.window:delay:delay=50ms,count=0")
	var killed bytes.Buffer
	cmd.Stdout = &killed
	cmd.Stderr = &killed
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(ckDir, "window-*.pmck")); len(m) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint files appeared; output so far:\n%s", killed.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := cmd.Wait(); err == nil {
		t.Skipf("run finished before the kill; output:\n%s", killed.String())
	}

	// Resume and finish. The restored count must be every window the
	// killed run flushed (files only appear via atomic rename, so a
	// mid-write kill never leaves a partial record behind).
	flushed, err := filepath.Glob(filepath.Join(ckDir, "window-*.pmck"))
	if err != nil {
		t.Fatal(err)
	}
	resumedOut := filepath.Join(dir, "resumed.pmrs")
	res := exec.Command(bin, append(args, "-checkpoint-dir", ckDir, "-resume", "-out", resumedOut)...)
	out, err := res.CombinedOutput()
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "resuming from") {
		t.Fatalf("missing resume banner:\n%s", out)
	}
	var restored, total int
	for _, line := range strings.Split(string(out), "\n") {
		if i := strings.LastIndex(line, ": "); strings.Contains(line, "resuming from") && i >= 0 {
			if _, err := fmt.Sscanf(line[i+2:], "%d/%d windows restored", &restored, &total); err != nil {
				t.Fatalf("unparseable resume banner %q: %v", line, err)
			}
		}
	}
	if restored < len(flushed) {
		t.Fatalf("resumed run restored %d windows, but %d were flushed", restored, len(flushed))
	}
	if restored == 0 || restored >= total {
		t.Fatalf("restored %d/%d windows; the kill must land mid-run", restored, total)
	}

	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumedOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed rank series differs from the uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}
