// Command pmbench regenerates the paper's evaluation: one experiment
// per table/figure (see DESIGN.md's experiment index).
//
// Usage:
//
//	pmbench -list
//	pmbench -exp fig5 [-scale 0.2] [-seed 1] [-workers 0] [-quick] [-max-windows 384]
//	pmbench -exp all [-json BENCH_run.json] [-metrics-addr :8080]
//	        [-trace-out sched.trace.json] [-report-out last-report.json]
//	pmbench -diff before.json after.json [-diff-threshold 1.25]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pmpr/internal/bench"
	"pmpr/internal/core"
	"pmpr/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all'); see -list")
		scale   = flag.Float64("scale", 0.2, "dataset scale")
		seed    = flag.Int64("seed", 1, "dataset seed")
		workers = flag.Int("workers", 0, "pool size (0 = GOMAXPROCS)")
		quick   = flag.Bool("quick", false, "trim sweeps for a fast pass")
		maxWin  = flag.Int("max-windows", 0, "cap windows per spec (0 = default)")
		list    = flag.Bool("list", false, "list experiments and exit")

		jsonOut     = flag.String("json", "", "write machine-readable results (pmpr-bench/v1) to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of every engine run's schedule")
		reportOut   = flag.String("report-out", "", "write the last engine run's report JSON")
		version     = flag.Bool("version", false, "print build info and exit")

		diff          = flag.Bool("diff", false, "compare two pmpr-bench/v1 JSON files (positional: before.json after.json) and exit nonzero on regression")
		diffThreshold = flag.Float64("diff-threshold", 1.25, "with -diff, flag entries whose after/before wall-time ratio exceeds this factor")
	)
	flag.Parse()
	if *version {
		fmt.Println("pmbench", obs.CollectBuildInfo())
		return
	}

	if *diff {
		os.Exit(runDiff(flag.Args(), *diffThreshold))
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "pmbench: -exp is required (or -list)")
		os.Exit(2)
	}
	o := bench.Options{
		Out:        os.Stdout,
		Scale:      *scale,
		Seed:       *seed,
		Workers:    *workers,
		Quick:      *quick,
		MaxWindows: *maxWin,
	}
	// Any observability output wants the scheduler counters in reports.
	o.PoolMetrics = *jsonOut != "" || *metricsAddr != "" || *traceOut != "" || *reportOut != ""

	shutdownObs := func() {}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, obs.NewRegistry())
		if err != nil {
			fatal(err)
		}
		// Graceful teardown with a short deadline so an in-flight scrape
		// finishes but SIGINT still exits promptly; runs via the defer on
		// the normal path and explicitly before the interrupt's os.Exit.
		shutdownObs = func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "pmbench: metrics server shutdown: %v\n", err)
			}
		}
		defer shutdownObs()
		fmt.Printf("serving metrics on http://%s/ (/metrics, /debug/vars, /debug/pprof/)\n", srv.Addr())
	}

	var jr *bench.JSONReport
	if *jsonOut != "" {
		jr = bench.NewJSONReport(o)
		o.ReportSink = jr.Sink()
	}
	var lastReport *core.RunReport
	if *reportOut != "" {
		prev := o.ReportSink
		o.ReportSink = func(r *core.RunReport) {
			if prev != nil {
				prev(r)
			}
			lastReport = r
		}
	}
	if *traceOut != "" {
		o.Trace = obs.NewTrace()
	}

	// First SIGINT/SIGTERM cancels the running experiment's engine at the
	// next window/batch boundary; artifacts collected so far still flush.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	runOne := func(e bench.Experiment) error {
		if jr != nil {
			return jr.RunExperiment(ctx, e, o)
		}
		return e.Run(ctx, o)
	}

	fmt.Printf("pmbench: GOMAXPROCS=%d scale=%g seed=%d quick=%v\n",
		runtime.GOMAXPROCS(0), *scale, *seed, *quick)
	var err error
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			if ctx.Err() != nil {
				break
			}
			fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
			if err = runOne(e); err != nil {
				err = fmt.Errorf("%s: %w", e.ID, err)
				break
			}
		}
	} else {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pmbench: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		err = runOne(e)
	}

	// Flush observability artifacts even when an experiment failed: a
	// partial trajectory beats none.
	if jr != nil {
		if werr := jr.WriteFile(*jsonOut); werr != nil {
			fatal(werr)
		}
		fmt.Printf("results written to %s (%d experiments, %d engine runs)\n",
			*jsonOut, len(jr.Experiments), len(jr.EngineRuns))
	}
	if *reportOut != "" {
		if lastReport == nil {
			fmt.Fprintln(os.Stderr, "pmbench: -report-out: no engine run produced a report")
		} else {
			if werr := lastReport.WriteJSONFile(*reportOut); werr != nil {
				fatal(werr)
			}
			fmt.Printf("last run report written to %s\n", *reportOut)
		}
	}
	if o.Trace != nil {
		if werr := o.Trace.WriteFile(*traceOut); werr != nil {
			fatal(werr)
		}
		fmt.Printf("schedule trace written to %s (%d events; load in Perfetto)\n", *traceOut, o.Trace.Len())
	}
	if err != nil {
		if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "pmbench: interrupted; partial results flushed")
			shutdownObs()
			os.Exit(130)
		}
		fatal(err)
	}
}

// runDiff implements -diff: compare two bench JSON files and return the
// process exit code (0 clean, 1 regression or error, 2 usage).
func runDiff(paths []string, threshold float64) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "pmbench: -diff needs exactly two positional arguments: before.json after.json")
		return 2
	}
	before, err := bench.ReadJSONReport(paths[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
		return 1
	}
	after, err := bench.ReadJSONReport(paths[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
		return 1
	}
	d := bench.DiffReports(before, after)
	d.Render(os.Stdout)
	if regs := d.Regressions(threshold); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "pmbench: %d entries regressed beyond %.2fx:\n", len(regs), threshold)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %-40s %.3gs -> %.3gs (%.2fx)\n", r.Key, r.Before, r.After, r.Ratio)
		}
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
	os.Exit(1)
}
