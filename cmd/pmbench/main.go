// Command pmbench regenerates the paper's evaluation: one experiment
// per table/figure (see DESIGN.md's experiment index).
//
// Usage:
//
//	pmbench -list
//	pmbench -exp fig5 [-scale 0.2] [-seed 1] [-workers 0] [-quick] [-max-windows 384]
//	pmbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"pmpr/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all'); see -list")
		scale   = flag.Float64("scale", 0.2, "dataset scale")
		seed    = flag.Int64("seed", 1, "dataset seed")
		workers = flag.Int("workers", 0, "pool size (0 = GOMAXPROCS)")
		quick   = flag.Bool("quick", false, "trim sweeps for a fast pass")
		maxWin  = flag.Int("max-windows", 0, "cap windows per spec (0 = default)")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "pmbench: -exp is required (or -list)")
		os.Exit(2)
	}
	o := bench.Options{
		Out:        os.Stdout,
		Scale:      *scale,
		Seed:       *seed,
		Workers:    *workers,
		Quick:      *quick,
		MaxWindows: *maxWin,
	}
	fmt.Printf("pmbench: GOMAXPROCS=%d scale=%g seed=%d quick=%v\n",
		runtime.GOMAXPROCS(0), *scale, *seed, *quick)
	var err error
	if *exp == "all" {
		err = bench.RunAll(o)
	} else {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pmbench: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		err = e.Run(o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmbench: %v\n", err)
		os.Exit(1)
	}
}
