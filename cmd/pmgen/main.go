// Command pmgen generates the synthetic temporal event datasets used by
// the benchmark harness (stand-ins for the paper's Table 1 graphs) and
// writes them as text or binary event lists.
//
// Usage:
//
//	pmgen -dataset wikitalk -scale 0.2 -seed 1 -o wikitalk.ev [-format text|binary] [-stats]
//	pmgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"pmpr/internal/analysis"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/obs"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "profile to generate (see -list)")
		scale   = flag.Float64("scale", 0.2, "size multiplier (1.0 = base size)")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("o", "", "output path (default stdout)")
		format  = flag.String("format", "text", "output format: text or binary")
		list    = flag.Bool("list", false, "list available profiles and exit")
		stats   = flag.Bool("stats", false, "print the edge-distribution histogram to stderr")
		version = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("pmgen", obs.CollectBuildInfo())
		return
	}

	if *list {
		for _, name := range gen.Names() {
			d, _ := gen.Get(name)
			fmt.Printf("%-14s %8d events %7d vertices %5d days  %s\n",
				name, d.BaseEvents, d.BaseVertices, d.SpanDays, d.Description)
		}
		return
	}
	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "pmgen: -dataset is required (or -list)")
		os.Exit(2)
	}
	d, ok := gen.Get(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "pmgen: unknown dataset %q; available: %v\n", *dataset, gen.Names())
		os.Exit(2)
	}
	l, err := d.Generate(*scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmgen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmgen: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	switch *format {
	case "text":
		err = events.WriteText(w, l)
	case "binary":
		err = events.WriteBinary(w, l)
	default:
		fmt.Fprintf(os.Stderr, "pmgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	// Close before checking the write error: a full disk often only
	// surfaces at close time, and a generated dataset that fails to
	// close is a truncated dataset.
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmgen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		counts, width, _ := analysis.Histogram(l, 60)
		fmt.Fprintf(os.Stderr, "%s: %d events, %d vertices, bin=%.1fd\n",
			*dataset, l.Len(), l.NumVertices(), float64(width)/float64(gen.Day))
		var peak int64
		for _, c := range counts {
			if c > peak {
				peak = c
			}
		}
		for i, c := range counts {
			bar := int(c * 50 / max64(peak, 1))
			fmt.Fprintf(os.Stderr, "%3d |%s %d\n", i, repeat('#', bar), c)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
