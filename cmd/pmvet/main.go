// Command pmvet runs the repository's domain-specific static analyzers
// (internal/lint) over the module's packages and reports findings as
//
//	file:line: rule: message
//
// exiting nonzero when any finding remains unsuppressed. It is
// stdlib-only: packages are parsed and type-checked from source, so it
// needs nothing beyond the Go toolchain.
//
// Usage:
//
//	pmvet [-rules panic,hotpath,floateq,closecheck,doc] [-list] [packages]
//
// Packages default to ./... and are module-relative patterns
// ("./internal/core", "./internal/..."). Suppress a single finding with
// a "//pmvet:ignore rule -- rationale" comment on the offending line or
// the line above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmpr/internal/lint"
)

func main() {
	var (
		rules = flag.String("rules", "", "comma-separated rule subset (default: all)")
		list  = flag.Bool("list", false, "list the available rules and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name(), a.Doc())
		}
		return
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fatal(err)
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pmvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
	os.Exit(2)
}
