// Command pmvet runs the repository's domain-specific static analyzers
// (internal/lint) over the module's packages and reports findings as
//
//	file:line: rule: message
//
// exiting nonzero when any finding remains unsuppressed. It is
// stdlib-only: packages are parsed and type-checked from source, so it
// needs nothing beyond the Go toolchain.
//
// Usage:
//
//	pmvet [flags] [packages]
//
//	-rules panic,hotpath,...  run a rule subset (default: all)
//	-list                     list the available rules and exit
//	-json                     emit findings as a JSON array on stdout
//	-graph                    dump the module call graph and exit
//	-effort quick|full        analysis tier: quick scopes the transitive
//	                          hotpath rule to internal/core+internal/sched
//	                          (pre-commit); full is module-wide (CI)
//	-strict                   stale //pmvet:ignore directives fail the run
//	                          instead of warning
//	-timings                  print per-rule wall times to stderr
//
// Packages default to ./... and are module-relative patterns
// ("./internal/core", "./internal/..."). Suppress a single finding with
// a "//pmvet:ignore rule -- rationale" comment on the offending line or
// the line above it; pmvet reports directives that no longer suppress
// anything, so suppressions cannot outlive their finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pmpr/internal/lint"
)

// jsonFinding is the -json wire form of one finding, shaped so a CI
// problem matcher (or jq) picks out file/line/rule directly.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Severity is "error" for rule findings and "warning" for stale
	// ignore directives (unless -strict promotes them).
	Severity string `json:"severity"`
}

func main() {
	var (
		rules    = flag.String("rules", "", "comma-separated rule subset (default: all)")
		list     = flag.Bool("list", false, "list the available rules and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON on stdout")
		graphOut = flag.Bool("graph", false, "dump the module call graph and exit")
		effort   = flag.String("effort", "full", "analysis tier: quick (core+sched) or full (module-wide)")
		strict   = flag.Bool("strict", false, "stale //pmvet:ignore directives fail the run")
		timings  = flag.Bool("timings", false, "print per-rule wall times to stderr")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-13s %s\n", a.Name(), a.Doc())
		}
		return
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fatal(err)
	}
	var tier lint.Effort
	switch *effort {
	case "quick":
		tier = lint.EffortQuick
	case "full":
		tier = lint.EffortFull
	default:
		fatal(fmt.Errorf("unknown -effort %q (quick or full)", *effort))
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}

	mod := lint.NewModule(pkgs)
	mod.Effort = tier

	if *graphOut {
		if err := mod.Graph().WriteGraph(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	rep := lint.Analyze(mod, analyzers)
	if *timings {
		for _, t := range rep.Timings {
			fmt.Fprintf(os.Stderr, "pmvet: %-13s %8.1fms (effort=%s)\n",
				t.Rule, float64(t.Elapsed.Microseconds())/1000, *effort)
		}
	}

	failing := len(rep.Findings)
	if *strict {
		failing += len(rep.Stale)
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(rep.Findings)+len(rep.Stale))
		for _, f := range rep.Findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line,
				Rule: f.Rule, Message: f.Msg, Severity: "error",
			})
		}
		for _, f := range rep.Stale {
			sev := "warning"
			if *strict {
				sev = "error"
			}
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line,
				Rule: f.Rule, Message: f.Msg, Severity: sev,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Println(f)
		}
		for _, f := range rep.Stale {
			fmt.Printf("%s [stale suppression]\n", f)
		}
	}

	if failing > 0 {
		fmt.Fprintf(os.Stderr, "pmvet: %d failing finding(s) in %d package(s)\n", failing, len(pkgs))
		os.Exit(1)
	}
	if len(rep.Stale) > 0 {
		fmt.Fprintf(os.Stderr, "pmvet: %d stale suppression(s) (warnings; -strict to fail)\n", len(rep.Stale))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
	os.Exit(2)
}
