// Command pmtop watches a live pmrank (or any process serving the obs
// live endpoints) from the terminal: it polls GET /status and renders a
// progress line with the run phase, windows done/total, fault counts,
// and wall-time percentiles, exiting when the run reaches a terminal
// phase.
//
// Usage:
//
//	pmtop -addr localhost:8080 [-interval 1s] [-once]
//	pmtop -validate run.jsonl
//
// -validate checks a journal JSONL file (pmrank -journal-out) against
// the documented event schema — strictly increasing sequence numbers,
// known event types, required per-type fields — and exits nonzero on
// the first violation; CI uses it to gate the journal format.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"pmpr/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "", "host:port of a pmrank -metrics-addr -live server")
		interval = flag.Duration("interval", time.Second, "poll interval")
		once     = flag.Bool("once", false, "print one status snapshot and exit")
		validate = flag.String("validate", "", "validate a journal JSONL file against the event schema and exit")
	)
	flag.Parse()
	if *validate != "" {
		os.Exit(validateJournal(*validate))
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "pmtop: -addr or -validate is required")
		os.Exit(2)
	}
	os.Exit(watch(*addr, *interval, *once))
}

// fetchStatus polls one /status snapshot.
func fetchStatus(client *http.Client, url string) (obs.Status, error) {
	var st obs.Status
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	//pmvet:ignore closecheck -- read-only response body; decode errors already surface
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

// render formats one status line.
func render(st obs.Status) string {
	line := fmt.Sprintf("phase=%-8s windows=%d/%d", st.Phase, st.WindowsDone, st.WindowsTotal)
	if st.WindowsQuarantined > 0 || st.Retried > 0 || st.Degraded > 0 || st.Resumed > 0 {
		line += fmt.Sprintf(" quarantined=%d retried=%d degraded=%d resumed=%d",
			st.WindowsQuarantined, st.Retried, st.Degraded, st.Resumed)
	}
	if h, ok := st.Histograms["window_wall_seconds"]; ok && h.Count > 0 {
		line += fmt.Sprintf(" wall[p50=%.3gs p95=%.3gs p99=%.3gs]", h.P50, h.P95, h.P99)
	}
	return line
}

// terminal reports whether the run cannot progress further.
func terminal(phase string) bool {
	return phase == "done" || phase == "canceled" || phase == "failed"
}

// watch polls /status until the run reaches a terminal phase and
// returns the process exit code. The output is line-oriented (one
// status line per change) so it stays readable in plain pipes and CI
// logs, not just interactive terminals.
func watch(addr string, interval time.Duration, once bool) int {
	url := "http://" + addr + "/status"
	client := &http.Client{Timeout: 5 * time.Second}
	var last string
	for {
		st, err := fetchStatus(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
			return 1
		}
		if line := render(st); line != last {
			fmt.Println(line)
			last = line
		}
		if once {
			return 0
		}
		if terminal(st.Phase) {
			if st.Phase != "done" {
				return 1
			}
			return 0
		}
		time.Sleep(interval)
	}
}

// journalLine is the decoded superset of every journal event's JSONL
// fields, with pointers distinguishing "absent" from zero values so the
// per-type requirements are checkable.
type journalLine struct {
	Seq          *uint64  `json:"seq"`
	TimeUnixNano *int64   `json:"time_unix_nano"`
	Type         string   `json:"type"`
	Stage        *string  `json:"stage"`
	Window       *int     `json:"window"`
	Worker       *int     `json:"worker"`
	Status       *string  `json:"status"`
	Iterations   *int     `json:"iterations"`
	Residual     *float64 `json:"residual"`
	Seconds      *float64 `json:"seconds"`
	Attempt      *int     `json:"attempt"`
	Windows      *int     `json:"windows"`
	Done         *int     `json:"done"`
	Kernel       *string  `json:"kernel"`
	Mode         *string  `json:"mode"`
	Workers      *int     `json:"workers"`
}

// required maps each event type to the JSONL fields it must carry (on
// top of seq/time_unix_nano/type, required everywhere). This is the
// checkable form of DESIGN.md's "Run journal & event schema" table.
var required = map[obs.EventType][]string{
	obs.EvRunStart:         {"windows", "kernel", "mode", "workers"},
	obs.EvRunEnd:           {"status", "done", "windows", "seconds"},
	obs.EvStageStart:       {"stage"},
	obs.EvStageEnd:         {"stage", "seconds"},
	obs.EvWindowStart:      {"window", "worker"},
	obs.EvWindowDone:       {"window", "worker", "status", "iterations", "residual", "seconds"},
	obs.EvRetry:            {"window", "worker", "attempt"},
	obs.EvDegrade:          {"window", "worker"},
	obs.EvQuarantine:       {"window", "worker", "attempt"},
	obs.EvCheckpointWrite:  {"window"},
	obs.EvCheckpointResume: {"window"},
	obs.EvCancel:           {"done", "windows"},
}

// has reports whether the named field was present on the line.
func (l *journalLine) has(field string) bool {
	switch field {
	case "stage":
		return l.Stage != nil
	case "window":
		return l.Window != nil
	case "worker":
		return l.Worker != nil
	case "status":
		return l.Status != nil
	case "iterations":
		return l.Iterations != nil
	case "residual":
		return l.Residual != nil
	case "seconds":
		return l.Seconds != nil
	case "attempt":
		return l.Attempt != nil
	case "windows":
		return l.Windows != nil
	case "done":
		return l.Done != nil
	case "kernel":
		return l.Kernel != nil
	case "mode":
		return l.Mode != nil
	case "workers":
		return l.Workers != nil
	default:
		return false
	}
}

// validateJournal checks a -journal-out file line by line and returns
// the process exit code.
func validateJournal(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
		return 1
	}
	//pmvet:ignore closecheck -- read-only input; decode errors already surface per line
	defer f.Close()
	fail := func(lineNo int, format string, args ...interface{}) int {
		fmt.Fprintf(os.Stderr, "pmtop: %s:%d: %s\n", path, lineNo, fmt.Sprintf(format, args...))
		return 1
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var prevSeq uint64
	lineNo, events := 0, 0
	counts := map[string]int{}
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		events++
		var l journalLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return fail(lineNo, "invalid JSON: %v", err)
		}
		if l.Seq == nil || l.TimeUnixNano == nil || l.Type == "" {
			return fail(lineNo, "missing seq/time_unix_nano/type")
		}
		if *l.Seq <= prevSeq {
			return fail(lineNo, "seq %d not increasing (previous %d)", *l.Seq, prevSeq)
		}
		prevSeq = *l.Seq
		fields, ok := required[obs.EventType(l.Type)]
		if !ok {
			return fail(lineNo, "unknown event type %q", l.Type)
		}
		for _, field := range fields {
			if !l.has(field) {
				return fail(lineNo, "%s event missing required field %q", l.Type, field)
			}
		}
		counts[l.Type]++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "pmtop: %s: %v\n", path, err)
		return 1
	}
	if events == 0 {
		fmt.Fprintf(os.Stderr, "pmtop: %s: empty journal\n", path)
		return 1
	}
	fmt.Printf("%s: %d events ok", path, events)
	for _, t := range []obs.EventType{obs.EvRunStart, obs.EvWindowDone, obs.EvRunEnd} {
		if n := counts[string(t)]; n > 0 {
			fmt.Printf(" %s=%d", t, n)
		}
	}
	fmt.Println()
	return 0
}
