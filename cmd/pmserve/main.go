// Command pmserve is the rank-serving daemon: it loads a .pmrs rank
// series (or computes one in-process) into an immutable, concurrently
// shared store and answers rank queries over HTTP/JSON.
//
// Usage:
//
//	pmserve -load ranks.pmrs [-addr 127.0.0.1:8097] [-cache 4096] [-max-k 1000]
//	pmserve -solve -in events.ev -delta-days 90 -slide 86400 \
//	        [-kernel spmm|spmv] [-mode nested|app|window] [engine flags...]
//
// Query endpoints (all GET, all JSON):
//
//	/v1/topk?window=W&k=K          top-k vertices of one window
//	/v1/vertex/{id}/trajectory     a vertex's rank across all windows
//	/v1/movers?from=A&to=B&k=K     largest rank shifts between windows
//	/v1/windows                    spec, per-window status, cache stats
//
// Responses are cached in an LRU keyed by the canonical query (the
// X-Cache header reports hit/miss/coalesced) and identical concurrent
// queries are coalesced into one computation. The endpoints share the
// observability mux, so /metrics, /debug/pprof/, /status and /events
// are served on the same address; with -solve the daemon comes up
// immediately (queries answer 503 until the engine finishes) and the
// run journal streams window_done frames over /events while it solves.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"pmpr/internal/cliutil"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/obs"
	"pmpr/internal/results"
	"pmpr/internal/sched"
	"pmpr/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8097", "serve HTTP on this address")
		load      = flag.String("load", "", "serve a rank series from this .pmrs file")
		solve     = flag.Bool("solve", false, "run the postmortem engine in-process on -in and serve its result")
		in        = flag.String("in", "", "input event file for -solve (text or binary; '-' = stdin)")
		deltaDays = flag.Float64("delta-days", 90, "window size delta in days (-solve)")
		slide     = flag.Int64("slide", 86400, "sliding offset sw in seconds (-solve)")
		maxWin    = flag.Int("max-windows", 0, "cap the number of windows (0 = all; -solve)")
		ef        = cliutil.RegisterEngineFlags(flag.CommandLine)
		cacheN    = flag.Int("cache", 0, "response cache entries (0 = default)")
		maxK      = flag.Int("max-k", serve.DefaultMaxK, "largest k accepted by topk/movers queries")
		version   = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("pmserve", obs.CollectBuildInfo())
		return
	}
	if (*load == "") == !*solve {
		fmt.Fprintln(os.Stderr, "pmserve: exactly one of -load or -solve is required")
		os.Exit(2)
	}
	if *solve && *in == "" {
		fmt.Fprintln(os.Stderr, "pmserve: -solve requires -in")
		os.Exit(2)
	}

	svc := serve.NewService(*cacheN)
	svc.MaxK = *maxK
	journal := obs.NewJournal(0)

	// liveEng is set once the -solve engine exists; before that (and in
	// -load mode) /status reports the serving snapshot alone.
	var liveEng atomic.Pointer[core.Engine]
	statusFn := func() obs.Status {
		st := obs.Status{Phase: "loading", LastSeq: journal.LastSeq()}
		if eng := liveEng.Load(); eng != nil {
			p := eng.Progress()
			st.Phase = p.Phase
			st.WindowsTotal = p.WindowsTotal
			st.WindowsDone = p.WindowsDone
			st.WindowsQuarantined = int(p.Quarantined)
			st.Retried = p.Retried
			st.Degraded = p.Degraded
			st.Resumed = p.Resumed
			h := eng.Histograms()
			st.Histograms = map[string]obs.HistogramSummary{
				"window_wall_seconds": h.WindowWall.Summary(),
				"window_iterations":   h.Iterations.Summary(),
				"window_residual":     h.Residual.Summary(),
			}
		}
		if rs := svc.Store(); rs != nil {
			st.Phase = "serving"
			st.WindowsTotal = rs.NumWindows()
			st.WindowsDone = rs.NumWindows()
		}
		return st
	}

	reg := obs.NewRegistry()
	reg.Gauge("pmpr_serve_cache_entries", "rank query cache entries", func() float64 {
		return float64(svc.CacheStats().Entries)
	})
	reg.Gauge("pmpr_serve_cache_hits_total", "rank query cache hits", func() float64 {
		return float64(svc.CacheStats().Hits)
	})
	reg.Gauge("pmpr_serve_cache_misses_total", "rank query cache misses", func() float64 {
		return float64(svc.CacheStats().Misses)
	})
	reg.Gauge("pmpr_serve_cache_evicts_total", "rank query cache evictions", func() float64 {
		return float64(svc.CacheStats().Evicts)
	})
	reg.Gauge("pmpr_serve_store_windows", "windows in the published store", func() float64 {
		if rs := svc.Store(); rs != nil {
			return float64(rs.NumWindows())
		}
		return 0
	})
	reg.Gauge("pmpr_serve_store_vertices", "vertex-space size of the published store", func() float64 {
		if rs := svc.Store(); rs != nil {
			return float64(rs.NumVertices())
		}
		return 0
	})
	reg.Gauge("pmpr_serve_store_generation", "publish generation of the served store", func() float64 {
		if rs := svc.Store(); rs != nil {
			return float64(rs.Generation())
		}
		return 0
	})

	mux := obs.NewMux(reg)
	obs.HandleLive(mux, journal, statusFn)
	svc.Mount(mux)
	obs.HandleIndex(mux, "pmserve", []string{
		"/v1/topk", "/v1/vertex/{id}/trajectory", "/v1/movers", "/v1/windows",
		"/status", "/events", "/metrics", "/debug/vars", "/debug/pprof/",
	})

	srv, err := obs.ServeHandler(*addr, mux)
	if err != nil {
		fatal(err)
	}
	shutdown := func(code int) {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "pmserve: shutdown: %v\n", err)
		}
		os.Exit(code)
	}
	fmt.Printf("pmserve: serving on http://%s/ (/v1/topk, /v1/vertex/{id}/trajectory, /v1/movers, /v1/windows)\n", srv.Addr())

	// First SIGINT/SIGTERM cancels an in-flight solve (or begins the
	// drain when already serving); a second signal kills the process the
	// usual way because stop() restores the default handlers.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *load != "" {
		st, err := loadStore(*load)
		if err != nil {
			fatal(err)
		}
		svc.Publish(st)
		fmt.Printf("pmserve: loaded %d windows over %d vertices from %s\n",
			st.NumWindows(), st.NumVertices(), *load)
	} else {
		st, err := solveStore(ctx, *in, *deltaDays, *slide, *maxWin, ef, journal, reg, &liveEng)
		if err != nil {
			var canceled *core.CanceledError
			if errors.As(err, &canceled) {
				fmt.Printf("pmserve: interrupted; partial progress: %d/%d windows solved\n",
					canceled.Completed, canceled.Total)
				shutdown(130)
			}
			fatal(err)
		}
		svc.Publish(st)
		fmt.Printf("pmserve: solved %d windows over %d vertices; store published\n",
			st.NumWindows(), st.NumVertices())
	}

	<-ctx.Done()
	fmt.Println("pmserve: signal received, draining")
	shutdown(0)
}

// loadStore reads a .pmrs file and builds the immutable query store.
// Corrupt input surfaces as a structured *results.CorruptError, never
// a panic — the file is untrusted.
func loadStore(path string) (*serve.RankStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//pmvet:ignore closecheck -- read-only input; decode errors already surface via the reader
	defer f.Close()
	s, err := results.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return serve.NewStore(s)
}

// solveStore runs the postmortem engine on the event file and converts
// the finished series into a query store. The journal is wired into the
// engine config, so window_done frames stream over /events while the
// HTTP server (already up) answers 503 to /v1 queries.
func solveStore(ctx context.Context, in string, deltaDays float64, slide int64, maxWin int,
	ef *cliutil.EngineFlags, journal *obs.Journal, reg *obs.Registry,
	liveEng *atomic.Pointer[core.Engine]) (*serve.RankStore, error) {
	l, err := cliutil.ReadLog(in)
	if err != nil {
		return nil, err
	}
	if !ef.Directed {
		l = l.Symmetrize()
	}
	spec, err := events.Span(l, int64(deltaDays*float64(gen.Day)), slide)
	if err != nil {
		return nil, err
	}
	if maxWin > 0 && spec.Count > maxWin {
		spec.Count = maxWin
	}
	fmt.Printf("pmserve: solving %d windows over %d vertices (%d events)\n",
		spec.Count, l.NumVertices(), l.Len())

	pool := sched.NewPool(ef.Workers)
	defer pool.Close()
	cfg := core.DefaultConfig()
	ef.ApplyTo(&cfg)
	cfg.Journal = journal
	eng, err := core.NewEngine(l, spec, cfg, pool)
	if err != nil {
		return nil, err
	}
	liveEng.Store(eng)
	eng.FaultCounters().RegisterOn(reg, "pmpr_engine_fault")
	eng.Histograms().RegisterOn(reg, "pmpr_window")
	s, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	return serve.NewStore(s.Export())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
	os.Exit(1)
}
