// Command pmserve is the rank-serving daemon: it loads a .pmrs rank
// series (or computes one in-process) into an immutable, concurrently
// shared store and answers rank queries over HTTP/JSON.
//
// Usage:
//
//	pmserve -load ranks.pmrs [-addr 127.0.0.1:8097] [-cache 4096] [-max-k 1000]
//	pmserve -solve -in events.ev -delta-days 90 -slide 86400 \
//	        [-kernel spmm|spmv] [-mode nested|app|window] [engine flags...]
//
// Query endpoints (all GET, all JSON):
//
//	/v1/topk?window=W&k=K          top-k vertices of one window
//	/v1/vertex/{id}/trajectory     a vertex's rank across all windows
//	/v1/movers?from=A&to=B&k=K     largest rank shifts between windows
//	/v1/windows                    spec, per-window status, cache stats
//
// Responses are cached in an LRU keyed by the canonical query (the
// X-Cache header reports hit/miss/coalesced) and identical concurrent
// queries are coalesced into one computation. The endpoints share the
// observability mux, so /metrics, /debug/pprof/, /status and /events
// are served on the same address; with -solve the daemon comes up
// immediately (queries answer 503 until the engine finishes) and the
// run journal streams window_done frames over /events while it solves.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"pmpr/internal/cliutil"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/obs"
	"pmpr/internal/results"
	"pmpr/internal/sched"
	"pmpr/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8097", "serve HTTP on this address")
		load      = flag.String("load", "", "serve a rank series from this .pmrs file")
		solve     = flag.Bool("solve", false, "run the postmortem engine in-process on -in and serve its result")
		in        = flag.String("in", "", "input event file for -solve (text or binary; '-' = stdin)")
		deltaDays = flag.Float64("delta-days", 90, "window size delta in days (-solve)")
		slide     = flag.Int64("slide", 86400, "sliding offset sw in seconds (-solve)")
		maxWin    = flag.Int("max-windows", 0, "cap the number of windows (0 = all; -solve)")
		ef        = cliutil.RegisterEngineFlags(flag.CommandLine)
		cacheN    = flag.Int("cache", 0, "response cache entries (0 = default)")
		maxK      = flag.Int("max-k", serve.DefaultMaxK, "largest k accepted by topk/movers queries")
		version   = flag.Bool("version", false, "print build info and exit")

		reqTimeout   = flag.Duration("request-timeout", 5*time.Second, "per-request deadline for /v1 queries (0 = none)")
		maxInFlight  = flag.Int("max-inflight", 256, "concurrent uncached query computations before queueing (0 = unlimited)")
		maxQueue     = flag.Int("max-queue", 0, "requests waiting for a compute slot before shedding (0 = -max-inflight)")
		queueWait    = flag.Duration("queue-wait", 100*time.Millisecond, "longest a queued request waits for a compute slot before shedding")
		rate         = flag.Float64("rate", 0, "per-client sustained requests/sec on /v1 endpoints (0 = unlimited)")
		rateBurst    = flag.Int("rate-burst", 0, "per-client burst above -rate (0 = ceil(-rate))")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "how long in-flight requests get to finish at shutdown")
	)
	flag.Parse()
	if *version {
		fmt.Println("pmserve", obs.CollectBuildInfo())
		return
	}
	if (*load == "") == !*solve {
		fmt.Fprintln(os.Stderr, "pmserve: exactly one of -load or -solve is required")
		os.Exit(2)
	}
	if *solve && *in == "" {
		fmt.Fprintln(os.Stderr, "pmserve: -solve requires -in")
		os.Exit(2)
	}

	svc := serve.NewService(*cacheN)
	svc.MaxK = *maxK
	guard := serve.NewGuard(serve.GuardConfig{
		Timeout:     *reqTimeout,
		MaxInFlight: *maxInFlight,
		MaxQueue:    *maxQueue,
		QueueWait:   *queueWait,
		RatePerSec:  *rate,
		RateBurst:   *rateBurst,
	})
	svc.Guard = guard
	journal := obs.NewJournal(0)

	// liveEng is set once the -solve engine exists; before that (and in
	// -load mode) /status reports the serving snapshot alone.
	var liveEng atomic.Pointer[core.Engine]
	statusFn := func() obs.Status {
		st := obs.Status{Phase: "loading", LastSeq: journal.LastSeq()}
		if eng := liveEng.Load(); eng != nil {
			p := eng.Progress()
			st.Phase = p.Phase
			st.WindowsTotal = p.WindowsTotal
			st.WindowsDone = p.WindowsDone
			st.WindowsQuarantined = int(p.Quarantined)
			st.Retried = p.Retried
			st.Degraded = p.Degraded
			st.Resumed = p.Resumed
			h := eng.Histograms()
			st.Histograms = map[string]obs.HistogramSummary{
				"window_wall_seconds": h.WindowWall.Summary(),
				"window_iterations":   h.Iterations.Summary(),
				"window_residual":     h.Residual.Summary(),
			}
		}
		if rs := svc.Store(); rs != nil {
			st.Phase = "serving"
			st.WindowsTotal = rs.NumWindows()
			st.WindowsDone = rs.NumWindows()
		}
		return st
	}

	reg := obs.NewRegistry()
	guard.RegisterOn(reg)
	reg.Gauge("pmpr_serve_cache_entries", "rank query cache entries", func() float64 {
		return float64(svc.CacheStats().Entries)
	})
	reg.Gauge("pmpr_serve_cache_hits_total", "rank query cache hits", func() float64 {
		return float64(svc.CacheStats().Hits)
	})
	reg.Gauge("pmpr_serve_cache_misses_total", "rank query cache misses", func() float64 {
		return float64(svc.CacheStats().Misses)
	})
	reg.Gauge("pmpr_serve_cache_evicts_total", "rank query cache evictions", func() float64 {
		return float64(svc.CacheStats().Evicts)
	})
	reg.Gauge("pmpr_serve_store_windows", "windows in the published store", func() float64 {
		if rs := svc.Store(); rs != nil {
			return float64(rs.NumWindows())
		}
		return 0
	})
	reg.Gauge("pmpr_serve_store_vertices", "vertex-space size of the published store", func() float64 {
		if rs := svc.Store(); rs != nil {
			return float64(rs.NumVertices())
		}
		return 0
	})
	reg.Gauge("pmpr_serve_store_generation", "publish generation of the served store", func() float64 {
		if rs := svc.Store(); rs != nil {
			return float64(rs.Generation())
		}
		return 0
	})

	mux := obs.NewMux(reg)
	obs.HandleLive(mux, journal, statusFn)
	svc.Mount(mux)
	svc.MountOps(mux)
	obs.HandleIndex(mux, "pmserve", []string{
		"/v1/topk", "/v1/vertex/{id}/trajectory", "/v1/movers", "/v1/windows",
		"/healthz", "/readyz",
		"/status", "/events", "/metrics", "/debug/vars", "/debug/pprof/",
	})

	srv, err := obs.ServeHandler(*addr, mux)
	if err != nil {
		fatal(err)
	}
	// shutdown is the single exit path once the server is up: gate new
	// work out (503 + Retry-After), let in-flight requests run to
	// completion within -drain-timeout (Shutdown force-closes stragglers
	// and SSE streams at the deadline), then join any orphaned coalesced
	// fills so process exit never races a live computation.
	shutdown := func(code int) {
		guard.StartDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "pmserve: shutdown: %v\n", err)
		}
		svc.WaitFills()
		os.Exit(code)
	}
	fmt.Printf("pmserve: serving on http://%s/ (/v1/topk, /v1/vertex/{id}/trajectory, /v1/movers, /v1/windows)\n", srv.Addr())

	// First SIGINT/SIGTERM cancels an in-flight solve (or begins the
	// drain when already serving); a second signal kills the process the
	// usual way because stop() restores the default handlers.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// buildStore produces a fresh store the same way the daemon was
	// started — re-reading -load or re-solving -in — so SIGHUP reloads
	// follow the exact startup path.
	buildStore := func(ctx context.Context) (*serve.RankStore, error) {
		if *load != "" {
			return loadStore(*load)
		}
		return solveStore(ctx, *in, *deltaDays, *slide, *maxWin, ef, journal, reg, &liveEng)
	}

	st, err := buildStore(ctx)
	if err != nil {
		var canceled *core.CanceledError
		if errors.As(err, &canceled) {
			fmt.Printf("pmserve: interrupted; partial progress: %d/%d windows solved\n",
				canceled.Completed, canceled.Total)
			shutdown(130)
		}
		// No previous generation to fall back to: startup failures stay
		// fatal rather than degrading into a daemon with nothing to serve.
		fatal(err)
	}
	if err := svc.TryPublish(st); err != nil {
		fatal(err)
	}
	if *load != "" {
		fmt.Printf("pmserve: loaded %d windows over %d vertices from %s\n",
			st.NumWindows(), st.NumVertices(), *load)
	} else {
		fmt.Printf("pmserve: solved %d windows over %d vertices; store published\n",
			st.NumWindows(), st.NumVertices())
	}

	// SIGHUP reloads the store in place: a successful rebuild publishes
	// the next generation (and clears any degraded state); a failed one
	// leaves the current generation serving and marks the daemon
	// degraded, so operators see stale-but-valid answers (X-Stale,
	// /readyz "degraded") instead of an outage.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		defer signal.Stop(hup)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				fmt.Println("pmserve: SIGHUP received, reloading store")
				st, err := buildStore(ctx)
				if err == nil {
					err = svc.TryPublish(st)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "pmserve: reload failed, serving previous generation: %v\n", err)
					svc.SetDegraded(fmt.Sprintf("reload failed: %v", err))
					continue
				}
				fmt.Printf("pmserve: reloaded; now serving generation %d (%d windows)\n",
					svc.Store().Generation(), st.NumWindows())
			}
		}
	}()

	<-ctx.Done()
	fmt.Println("pmserve: signal received, draining")
	shutdown(0)
}

// loadStore reads a .pmrs file and builds the immutable query store.
// Corrupt input surfaces as a structured *results.CorruptError, never
// a panic — the file is untrusted.
func loadStore(path string) (*serve.RankStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//pmvet:ignore closecheck -- read-only input; decode errors already surface via the reader
	defer f.Close()
	s, err := results.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return serve.NewStore(s)
}

// solveStore runs the postmortem engine on the event file and converts
// the finished series into a query store. The journal is wired into the
// engine config, so window_done frames stream over /events while the
// HTTP server (already up) answers 503 to /v1 queries.
func solveStore(ctx context.Context, in string, deltaDays float64, slide int64, maxWin int,
	ef *cliutil.EngineFlags, journal *obs.Journal, reg *obs.Registry,
	liveEng *atomic.Pointer[core.Engine]) (*serve.RankStore, error) {
	l, err := cliutil.ReadLog(in)
	if err != nil {
		return nil, err
	}
	if !ef.Directed {
		l = l.Symmetrize()
	}
	spec, err := events.Span(l, int64(deltaDays*float64(gen.Day)), slide)
	if err != nil {
		return nil, err
	}
	if maxWin > 0 && spec.Count > maxWin {
		spec.Count = maxWin
	}
	fmt.Printf("pmserve: solving %d windows over %d vertices (%d events)\n",
		spec.Count, l.NumVertices(), l.Len())

	pool := sched.NewPool(ef.Workers)
	defer pool.Close()
	cfg := core.DefaultConfig()
	ef.ApplyTo(&cfg)
	cfg.Journal = journal
	eng, err := core.NewEngine(l, spec, cfg, pool)
	if err != nil {
		return nil, err
	}
	liveEng.Store(eng)
	eng.FaultCounters().RegisterOn(reg, "pmpr_engine_fault")
	eng.Histograms().RegisterOn(reg, "pmpr_window")
	s, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	return serve.NewStore(s.Export())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pmserve: %v\n", err)
	os.Exit(1)
}
