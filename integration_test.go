package pmpr

// End-to-end integration tests: the three execution models must agree
// window-by-window on realistic synthetic datasets (the property the
// paper engineers so its timing comparison is fair), and the postmortem
// engine must be deterministic across runs of the same configuration.

import (
	"context"

	"math"
	"testing"

	"pmpr/internal/analysis"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/offline"
	"pmpr/internal/sched"
	"pmpr/internal/streaming"
)

func genLog(t *testing.T, name string, scale float64) *events.Log {
	t.Helper()
	d, ok := gen.Get(name)
	if !ok {
		t.Fatalf("unknown dataset %s", name)
	}
	l, err := d.Generate(scale, 5)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return l.Symmetrize()
}

func TestThreeModelsAgreeOnSyntheticData(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, name := range []string{"enron", "wikitalk"} {
		l := genLog(t, name, 0.01)
		first, last, _ := l.TimeRange()
		spec, err := events.Span(l, (last-first)/10, (last-first)/40)
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		if spec.Count > 32 {
			spec.Count = 32
		}

		offStats, err := offline.Run(l, spec, offline.DefaultConfig(), pool)
		if err != nil {
			t.Fatalf("offline: %v", err)
		}
		sr, err := streaming.NewRunner(l, spec, streaming.DefaultConfig(), pool)
		if err != nil {
			t.Fatalf("streaming: %v", err)
		}
		strStats, err := sr.Run()
		if err != nil {
			t.Fatalf("streaming run: %v", err)
		}
		cfg := core.DefaultConfig()
		cfg.Directed = false
		eng, err := core.NewEngine(l, spec, cfg, pool)
		if err != nil {
			t.Fatalf("postmortem: %v", err)
		}
		series, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("postmortem run: %v", err)
		}

		for w := 0; w < spec.Count; w++ {
			post := series.Window(w).Dense(l.NumVertices())
			if d := analysis.L1(post, offStats[w].Ranks); d > 1e-5 {
				t.Fatalf("%s window %d: postmortem vs offline L1 = %v", name, w, d)
			}
			if d := analysis.L1(post, strStats[w].Ranks); d > 1e-5 {
				t.Fatalf("%s window %d: postmortem vs streaming L1 = %v", name, w, d)
			}
		}
	}
}

func TestPostmortemDeterministicSerial(t *testing.T) {
	l := genLog(t, "hepth", 0.01)
	first, last, _ := l.TimeRange()
	spec, err := events.Span(l, (last-first)/8, (last-first)/24)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Directed = false
	run := func() *core.Series {
		eng, err := core.NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s
	}
	a, b := run(), run()
	for w := 0; w < spec.Count; w++ {
		da := a.Window(w).Dense(l.NumVertices())
		db := b.Window(w).Dense(l.NumVertices())
		for v := range da {
			if da[v] != db[v] {
				t.Fatalf("window %d vertex %d: %v != %v (serial runs must be bit-identical)",
					w, v, da[v], db[v])
			}
		}
		if a.Window(w).Iterations != b.Window(w).Iterations {
			t.Fatalf("window %d: iteration counts differ", w)
		}
	}
}

func TestParallelCloseToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	pool := sched.NewPool(4)
	defer pool.Close()
	l := genLog(t, "askubuntu", 0.02)
	first, last, _ := l.TimeRange()
	spec, err := events.Span(l, (last-first)/8, (last-first)/24)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Directed = false
	serialEng, err := core.NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	serial, err := serialEng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	parEng, err := core.NewEngine(l, spec, cfg, pool)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	par, err := parEng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for w := 0; w < spec.Count; w++ {
		ds := serial.Window(w).Dense(l.NumVertices())
		dp := par.Window(w).Dense(l.NumVertices())
		for v := range ds {
			// Reduction order differs under parallel execution; results
			// agree to the convergence tolerance.
			if diff := math.Abs(ds[v] - dp[v]); diff > 1e-6 {
				t.Fatalf("window %d vertex %d: serial %v vs parallel %v", w, v, ds[v], dp[v])
			}
		}
	}
}
