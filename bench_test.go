package pmpr

// One testing.B benchmark per table/figure of the paper's evaluation
// (Sec. 5-6), plus substrate microbenchmarks. The full printed tables
// come from cmd/pmbench; these targets measure the underlying kernels
// so `go test -bench=.` regenerates every comparison's timing series.
//
// Datasets are generated once per size at a small scale so the whole
// suite is laptop-friendly; see internal/bench for the full-scale
// harness.

import (
	"context"

	"fmt"
	"sync"
	"testing"

	"pmpr/internal/analysis"
	"pmpr/internal/betweenness"
	"pmpr/internal/closeness"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/kcore"
	"pmpr/internal/offline"
	"pmpr/internal/sched"
	"pmpr/internal/streaming"
	"pmpr/internal/tcsr"
	"pmpr/internal/wcc"
)

const benchScale = 0.05

var (
	logOnce sync.Once
	logs    map[string]*events.Log
)

func dataset(b *testing.B, name string) *events.Log {
	b.Helper()
	logOnce.Do(func() {
		logs = make(map[string]*events.Log)
		for _, n := range gen.Names() {
			d, _ := gen.Get(n)
			l, err := d.Generate(benchScale, 1)
			if err != nil {
				panic(err)
			}
			logs[n] = l.Symmetrize()
		}
	})
	l, ok := logs[name]
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	return l
}

func spec(b *testing.B, l *events.Log, deltaDays float64, slideSec int64, maxWin int) events.WindowSpec {
	b.Helper()
	s, err := events.Span(l, int64(deltaDays*float64(gen.Day)), slideSec)
	if err != nil {
		b.Fatal(err)
	}
	if s.Count > maxWin {
		// Stretch the sliding offset so the sequence still tiles the
		// whole dataset (the paper's regime) with a tractable count.
		first, last, _ := l.TimeRange()
		slide := (last - first) / int64(maxWin)
		if slide < 1 {
			slide = 1
		}
		s, err = events.Span(l, int64(deltaDays*float64(gen.Day)), slide)
		if err != nil {
			b.Fatal(err)
		}
		if s.Count > maxWin {
			s.Count = maxWin
		}
	}
	return s
}

func postmortemCfg(kernel core.KernelID, mode core.ParallelMode, part sched.Partitioner, grain, mw int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Kernel = kernel
	cfg.Mode = mode
	cfg.Partitioner = part
	cfg.Grain = grain
	cfg.NumMultiWindows = mw
	cfg.VectorLen = 16
	cfg.Directed = false
	cfg.DiscardRanks = true
	return cfg
}

func runPostmortem(b *testing.B, l *events.Log, sp events.WindowSpec, cfg core.Config, pool *sched.Pool) {
	b.Helper()
	eng, err := core.NewEngine(l, sp, cfg, pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func runStreaming(b *testing.B, l *events.Log, sp events.WindowSpec, pool *sched.Pool) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := streaming.DefaultConfig()
		cfg.DiscardRanks = true
		r, err := streaming.NewRunner(l, sp, cfg, pool)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func runOffline(b *testing.B, l *events.Log, sp events.WindowSpec, pool *sched.Pool) {
	b.Helper()
	cfg := offline.DefaultConfig()
	cfg.DiscardRanks = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.Run(l, sp, cfg, pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Datasets measures generating each synthetic dataset
// (Table 1's graph inventory).
func BenchmarkTable1Datasets(b *testing.B) {
	for _, name := range gen.Names() {
		d, _ := gen.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Generate(benchScale, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Histogram measures the edge-distribution series of
// Figure 4.
func BenchmarkFig4Histogram(b *testing.B) {
	l := dataset(b, "wikitalk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Histogram(l, 60)
	}
}

// BenchmarkFig5ExecutionModels reproduces Figure 5: offline vs
// streaming vs (bare-bone) postmortem wall time per dataset.
func BenchmarkFig5ExecutionModels(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	cases := []struct {
		name  string
		delta float64
		slide int64
	}{
		{"enron", 730, 172800},
		{"youtube", 60, 86400},
		{"epinions", 60, 86400},
		{"wikitalk", 90, 259200},
	}
	for _, c := range cases {
		l := dataset(b, c.name)
		sp := spec(b, l, c.delta, c.slide, 64)
		b.Run(c.name+"/offline", func(b *testing.B) { runOffline(b, l, sp, pool) })
		b.Run(c.name+"/streaming", func(b *testing.B) { runStreaming(b, l, sp, pool) })
		b.Run(c.name+"/postmortem", func(b *testing.B) {
			runPostmortem(b, l, sp, postmortemCfg(core.SpMV, core.AppLevel, sched.Static, 64, 6), pool)
		})
	}
}

// BenchmarkFig6PartialInit reproduces Figure 6: full vs partial
// initialization across window sizes.
func BenchmarkFig6PartialInit(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	for _, deltaDays := range []float64{10, 90, 180} {
		sp := spec(b, l, deltaDays, 43200, 64)
		for _, partial := range []bool{false, true} {
			label := fmt.Sprintf("delta%gd/partial=%v", deltaDays, partial)
			b.Run(label, func(b *testing.B) {
				cfg := postmortemCfg(core.SpMV, core.AppLevel, sched.Static, 64, 6)
				cfg.PartialInit = partial
				runPostmortem(b, l, sp, cfg, pool)
			})
		}
	}
}

// BenchmarkFig7Partitioners reproduces Figure 7's sweep: partitioner x
// parallelization level x kernel at a moderate window count.
func BenchmarkFig7Partitioners(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 96)
	for _, part := range []sched.Partitioner{sched.Auto, sched.Simple, sched.Static} {
		for _, mode := range []core.ParallelMode{core.Nested, core.AppLevel, core.WindowLevel} {
			for _, kernel := range []core.KernelID{core.SpMM, core.SpMV} {
				label := fmt.Sprintf("%v/%v/%v", part, mode, kernel)
				b.Run(label, func(b *testing.B) {
					runPostmortem(b, l, sp, postmortemCfg(kernel, mode, part, 2, 12), pool)
				})
			}
		}
	}
}

// BenchmarkFig8MultiWindow reproduces Figure 8: sensitivity to the
// number of multi-window graphs.
func BenchmarkFig8MultiWindow(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 96)
	for _, mw := range []int{1, 6, 24, 96} {
		b.Run(fmt.Sprintf("mw%d", mw), func(b *testing.B) {
			runPostmortem(b, l, sp, postmortemCfg(core.SpMM, core.Nested, sched.Auto, 2, mw), pool)
		})
	}
}

// BenchmarkFig9FewWindows reproduces Figure 9: only 6 windows, where
// window-level parallelism starves.
func BenchmarkFig9FewWindows(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 6)
	for _, mode := range []core.ParallelMode{core.Nested, core.AppLevel, core.WindowLevel} {
		b.Run(mode.String(), func(b *testing.B) {
			runPostmortem(b, l, sp, postmortemCfg(core.SpMM, mode, sched.Auto, 2, 6), pool)
		})
	}
}

// BenchmarkFig10ManyWindows reproduces Figure 10: a long window
// sequence, the regime where window-level parallelism shines.
func BenchmarkFig10ManyWindows(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 86400, 192)
	for _, mode := range []core.ParallelMode{core.Nested, core.AppLevel, core.WindowLevel} {
		b.Run(mode.String(), func(b *testing.B) {
			runPostmortem(b, l, sp, postmortemCfg(core.SpMM, mode, sched.Auto, 2, 24), pool)
		})
	}
}

// BenchmarkFig11BestVsStreaming reproduces Figure 11's per-dataset
// comparison: the tuned postmortem configuration and the streaming
// baseline on every dataset's first Table 1 cell.
func BenchmarkFig11BestVsStreaming(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	for _, name := range gen.Names() {
		d, _ := gen.Get(name)
		l := dataset(b, name)
		sp := spec(b, l, d.WindowDays[0], d.SlidingOffsets[0], 48)
		mw := sp.Count / 8
		if mw < 6 {
			mw = 6
		}
		b.Run(name+"/streaming", func(b *testing.B) { runStreaming(b, l, sp, pool) })
		b.Run(name+"/postmortem", func(b *testing.B) {
			runPostmortem(b, l, sp, postmortemCfg(core.SpMM, core.Nested, sched.Auto, 2, mw), pool)
		})
	}
}

// BenchmarkFig12Suggested reproduces Figure 12: wiki-talk under the
// paper's suggested parameters across its (sw, delta) grid.
func BenchmarkFig12Suggested(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	for _, sw := range []int64{43200, 86400} {
		for _, deltaDays := range []float64{10, 90} {
			sp := spec(b, l, deltaDays, sw, 48)
			mw := sp.Count / 8
			if mw < 6 {
				mw = 6
			}
			b.Run(fmt.Sprintf("sw%d/delta%gd", sw, deltaDays), func(b *testing.B) {
				runPostmortem(b, l, sp, postmortemCfg(core.SpMM, core.Nested, sched.Auto, 2, mw), pool)
			})
		}
	}
}

// --- substrate microbenchmarks ---

// BenchmarkTemporalCSRBuild measures constructing the postmortem
// representation (the one-time cost the model amortizes).
func BenchmarkTemporalCSRBuild(b *testing.B) {
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 96)
	for _, mw := range []int{1, 6, 24} {
		b.Run(fmt.Sprintf("mw%d", mw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tcsr.Build(l, sp, mw, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingBatch measures the dynamic graph maintenance cost
// alone: sliding the full window sequence without PageRank.
func BenchmarkStreamingBatch(b *testing.B) {
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := streaming.NewGraph(l.NumVertices(), false)
		for w := 0; w < sp.Count; w++ {
			if w == 0 {
				for _, e := range l.Slice(sp.Start(0), sp.End(0)) {
					if _, err := g.InsertEvent(e.U, e.V); err != nil {
						b.Fatal(err)
					}
				}
				continue
			}
			depHi := sp.End(w - 1)
			if s := sp.Start(w) - 1; s < depHi {
				depHi = s
			}
			for _, e := range l.Slice(sp.Start(w-1), depHi) {
				if _, err := g.RemoveEvent(e.U, e.V); err != nil {
					b.Fatal(err)
				}
			}
			entLo := sp.Start(w)
			if s := sp.End(w-1) + 1; s > entLo {
				entLo = s
			}
			for _, e := range l.Slice(entLo, sp.End(w)) {
				if _, err := g.InsertEvent(e.U, e.V); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSchedulerParallelFor measures the fork-join overhead of the
// TBB-equivalent scheduler at several grains.
func BenchmarkSchedulerParallelFor(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	for _, grain := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("grain%d", grain), func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				pool.ParallelFor(1<<16, grain, sched.Auto, func(_ *sched.Worker, lo, hi int) {
					s := int64(0)
					for j := lo; j < hi; j++ {
						s += int64(j)
					}
					sink += s
				})
			}
			_ = sink
		})
	}
}

// BenchmarkSpMMVectorLength measures the SpMM amortization as the
// number of simultaneously advanced windows grows (Sec. 4.4).
func BenchmarkSpMMVectorLength(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 64)
	for _, vl := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("veclen%d", vl), func(b *testing.B) {
			cfg := postmortemCfg(core.SpMM, core.AppLevel, sched.Auto, 64, 8)
			cfg.VectorLen = vl
			runPostmortem(b, l, sp, cfg, pool)
		})
	}
}

// BenchmarkExtComponents measures the postmortem connected-components
// kernel (one of Sec. 3.1's other analyses) over the window sequence.
func BenchmarkExtComponents(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 96)
	eng, err := wcc.NewEngine(l, sp, wcc.DefaultConfig(), pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtKCore measures the postmortem k-core kernel.
func BenchmarkExtKCore(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 96)
	eng, err := kcore.NewEngine(l, sp, kcore.DefaultConfig(), pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBalancedPartition compares uniform vs event-balanced
// multi-window partitioning on bursty data (the paper's future-work
// decomposition).
func BenchmarkAblationBalancedPartition(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "epinions")
	sp := spec(b, l, 60, 86400, 96)
	for _, balanced := range []bool{false, true} {
		label := "uniform"
		if balanced {
			label = "balanced"
		}
		b.Run(label, func(b *testing.B) {
			cfg := postmortemCfg(core.SpMM, core.Nested, sched.Auto, 2, 12)
			cfg.BalancedPartition = balanced
			runPostmortem(b, l, sp, cfg, pool)
		})
	}
}

// BenchmarkAblationPropagationBlocking compares the plain pull SpMV
// kernel with the propagation-blocked variant (Beamer et al., the
// optimization the paper calls compatible with its scheme).
func BenchmarkAblationPropagationBlocking(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 96)
	for _, kernel := range []core.KernelID{core.SpMV, core.SpMVBlocked} {
		b.Run(kernel.String(), func(b *testing.B) {
			runPostmortem(b, l, sp, postmortemCfg(kernel, core.AppLevel, sched.Auto, 64, 12), pool)
		})
	}
}

// BenchmarkExtCloseness measures the sampled harmonic-closeness kernel.
func BenchmarkExtCloseness(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 48)
	cfg := closeness.DefaultConfig()
	cfg.SampleSources = 16
	eng, err := closeness.NewEngine(l, sp, cfg, pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtBetweenness measures the sampled Brandes kernel.
func BenchmarkExtBetweenness(b *testing.B) {
	pool := sched.NewPool(0)
	defer pool.Close()
	l := dataset(b, "wikitalk")
	sp := spec(b, l, 90, 43200, 48)
	cfg := betweenness.DefaultConfig()
	cfg.SampleSources = 8
	eng, err := betweenness.NewEngine(l, sp, cfg, pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
