package pmpr

// End-to-end tests of the command-line tools: generate a dataset with
// pmgen, analyze it with pmrank (exporting the rank series), and run a
// quick harness experiment with pmbench. These build and execute the
// real binaries via `go run`.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"pmpr/internal/obs"
	"pmpr/internal/results"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	tmp := t.TempDir()
	ev := filepath.Join(tmp, "enron.ev")
	pmrs := filepath.Join(tmp, "ranks.pmrs")

	out := runTool(t, "./cmd/pmgen", "-dataset", "enron", "-scale", "0.02", "-seed", "3", "-o", ev, "-format", "binary")
	if _, err := os.Stat(ev); err != nil {
		t.Fatalf("pmgen produced no file: %v (output: %s)", err, out)
	}

	out = runTool(t, "./cmd/pmrank", "-in", ev, "-delta-days", "365", "-slide", "172800",
		"-max-windows", "12", "-top", "2", "-out", pmrs)
	if !strings.Contains(out, "postmortem: 12 windows") {
		t.Fatalf("unexpected pmrank output:\n%s", out)
	}

	f, err := os.Open(pmrs)
	if err != nil {
		t.Fatalf("open exported series: %v", err)
	}
	defer f.Close()
	series, err := results.Read(f)
	if err != nil {
		t.Fatalf("read exported series: %v", err)
	}
	if series.Spec.Count != 12 || len(series.Windows) != 12 {
		t.Fatalf("exported series has %d windows, want 12", len(series.Windows))
	}
	for w, wr := range series.Windows {
		var sum float64
		for _, r := range wr.Ranks {
			sum += r
		}
		if len(wr.Ranks) > 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("window %d ranks sum to %v", w, sum)
		}
	}

	// The other models run on the same file.
	for _, model := range []string{"streaming", "offline", "components", "kcore", "closeness"} {
		out := runTool(t, "./cmd/pmrank", "-in", ev, "-delta-days", "365", "-slide", "172800",
			"-max-windows", "6", "-model", model)
		if !strings.Contains(out, "6 windows") {
			t.Fatalf("%s: unexpected output:\n%s", model, out)
		}
	}

	// A quick harness experiment prints its table.
	out = runTool(t, "./cmd/pmbench", "-exp", "table1", "-quick", "-scale", "0.02")
	if !strings.Contains(out, "enron") || !strings.Contains(out, "wikitalk") {
		t.Fatalf("pmbench table1 output incomplete:\n%s", out)
	}
}

// e2eFrame is one SSE frame off the /events stream.
type e2eFrame struct {
	id    uint64
	event string
	data  string
}

// readFrame parses the next SSE frame (skipping heartbeat comments).
func readFrame(r *bufio.Reader) (e2eFrame, error) {
	var f e2eFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if f.data != "" || f.event != "" {
				return f, nil
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				return f, fmt.Errorf("bad id line %q: %v", line, err)
			}
			f.id = id
		case strings.HasPrefix(line, "event: "):
			f.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			f.data = line[len("data: "):]
		default:
			return f, fmt.Errorf("unexpected SSE line %q", line)
		}
	}
}

// TestCLILiveObservability drives the full live path end to end: build
// the real pmrank binary, run it with -live and -journal-out against a
// generated dataset (a per-window delay faultpoint stretches the solve
// so the run is observably in flight), then assert /status reports a
// mid-solve snapshot, /events streams ordered window_done frames with
// a lossless Last-Event-ID resume, and the journal file validates with
// pmtop -validate.
func TestCLILiveObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	tmp := t.TempDir()
	ev := filepath.Join(tmp, "enron.ev")
	journal := filepath.Join(tmp, "run.jsonl")
	runTool(t, "./cmd/pmgen", "-dataset", "enron", "-scale", "0.02", "-seed", "3", "-o", ev, "-format", "binary")

	bin := filepath.Join(tmp, "pmrank")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pmrank").CombinedOutput(); err != nil {
		t.Fatalf("go build pmrank: %v\n%s", err, out)
	}

	const windows = 12
	cmd := exec.Command(bin, "-in", ev, "-delta-days", "365", "-slide", "172800",
		"-max-windows", strconv.Itoa(windows), "-kernel", "spmv", "-workers", "1",
		"-metrics-addr", "127.0.0.1:0", "-live", "-journal-out", journal)
	// spmv windows pass the core.solve.window faultpoint; 25ms per
	// window keeps the run in flight for ~300ms without slowing CI much.
	cmd.Env = append(os.Environ(), "PMPR_FAULTPOINTS=core.solve.window:delay:delay=25ms,count=0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start pmrank: %v", err)
	}
	killed := time.AfterFunc(90*time.Second, func() { cmd.Process.Kill() })
	defer killed.Stop()
	defer cmd.Process.Kill()

	// Collect pmrank's output and watch for the bound address.
	addrRe := regexp.MustCompile(`serving metrics on http://([^/]+)/`)
	addrCh := make(chan string, 1)
	outDone := make(chan string, 1)
	go func() {
		var all strings.Builder
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			all.WriteString(line)
			all.WriteByte('\n')
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
		outDone <- all.String()
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case out := <-outDone:
		t.Fatalf("pmrank exited before serving metrics:\n%s", out)
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for the metrics address")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Second)
	defer cancel()
	stream := func(lastEventID uint64) (*bufio.Reader, func()) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cmd.Process.Kill()
			t.Fatalf("GET /events: %v\npmrank output:\n%s", err, <-outDone)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /events: %s", resp.Status)
		}
		return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
	}
	r, closeStream := stream(0)
	defer closeStream()

	// Read frames until run_end, checking ordering and collecting the
	// window_done stream; after the first window lands (eleven delayed
	// windows remain, so the run is reliably mid-solve) snapshot /status
	// and exercise a Last-Event-ID reconnect — both must happen while
	// the run is in flight, because pmrank tears the server down on exit.
	var (
		lastSeq     uint64
		doneWindows []int
		runEnd      map[string]interface{}
	)
	for runEnd == nil {
		f, err := readFrame(r)
		if err != nil {
			t.Fatalf("reading /events after seq %d: %v", lastSeq, err)
		}
		if f.event != "" {
			t.Fatalf("unexpected %q frame: %s", f.event, f.data)
		}
		if f.id <= lastSeq {
			t.Fatalf("frame id %d not increasing (previous %d)", f.id, lastSeq)
		}
		lastSeq = f.id
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(f.data), &m); err != nil {
			t.Fatalf("frame %d data is not JSON: %v\n%s", f.id, err, f.data)
		}
		switch m["type"] {
		case "window_done":
			doneWindows = append(doneWindows, int(m["window"].(float64)))
			if len(doneWindows) == 1 {
				resp, err := http.Get("http://" + addr + "/status")
				if err != nil {
					t.Fatalf("GET /status: %v", err)
				}
				var st obs.Status
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("decode /status: %v", err)
				}
				if st.Phase != "solve" {
					t.Fatalf("mid-run /status phase = %q, want solve (%+v)", st.Phase, st)
				}
				if st.WindowsTotal != windows || st.WindowsDone < 1 || st.WindowsDone >= windows {
					t.Fatalf("mid-run /status windows = %d/%d", st.WindowsDone, st.WindowsTotal)
				}
				if st.LastSeq == 0 {
					t.Fatal("mid-run /status has no journal position")
				}
				if h, ok := st.Histograms["window_wall_seconds"]; !ok || h.Count < 1 {
					t.Fatalf("mid-run /status histograms = %+v", st.Histograms)
				}

				// A reconnect with Last-Event-ID resumes exactly after
				// the given seq — lossless, no lagged frame (the ring
				// still holds everything, so the next frame follows
				// immediately or as soon as the next event fires).
				r2, closeStream2 := stream(f.id)
				f2, err := readFrame(r2)
				closeStream2()
				if err != nil {
					t.Fatalf("resumed stream: %v", err)
				}
				if f2.event != "" || f2.id != f.id+1 {
					t.Fatalf("resumed stream first frame id=%d event=%q, want id=%d", f2.id, f2.event, f.id+1)
				}
			}
		case "run_end":
			runEnd = m
		}
	}
	if len(doneWindows) != windows {
		t.Fatalf("saw %d window_done frames, want %d (%v)", len(doneWindows), windows, doneWindows)
	}
	seen := map[int]bool{}
	for _, w := range doneWindows {
		if w < 0 || w >= windows || seen[w] {
			t.Fatalf("bad window_done sequence %v", doneWindows)
		}
		seen[w] = true
	}
	if runEnd["status"] != "completed" || int(runEnd["done"].(float64)) != windows {
		t.Fatalf("run_end = %v", runEnd)
	}

	closeStream()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("pmrank: %v", err)
	}
	out := <-outDone
	if !strings.Contains(out, "event journal written to") {
		t.Fatalf("pmrank output missing journal confirmation:\n%s", out)
	}

	// The journal file passes schema validation.
	vout := runTool(t, "./cmd/pmtop", "-validate", journal)
	if !strings.Contains(vout, "events ok") || !strings.Contains(vout, "window_done=12") {
		t.Fatalf("pmtop -validate output:\n%s", vout)
	}
}

// TestCLIServe drives the serving pipeline end to end: generate a
// dataset, solve it with pmrank exporting a .pmrs series, then run the
// real pmserve binary on it and query every /v1 endpoint over HTTP —
// including the cache-provenance header and the error statuses — plus
// the composed obs endpoints on the same address. A corrupt .pmrs must
// be refused at startup with a structured error, never a panic.
func TestCLIServe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	tmp := t.TempDir()
	ev := filepath.Join(tmp, "enron.ev")
	pmrs := filepath.Join(tmp, "ranks.pmrs")
	runTool(t, "./cmd/pmgen", "-dataset", "enron", "-scale", "0.02", "-seed", "3", "-o", ev, "-format", "binary")
	runTool(t, "./cmd/pmrank", "-in", ev, "-delta-days", "365", "-slide", "172800",
		"-max-windows", "8", "-out", pmrs)

	bin := filepath.Join(tmp, "pmserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pmserve").CombinedOutput(); err != nil {
		t.Fatalf("go build pmserve: %v\n%s", err, out)
	}

	// A corrupt series is refused with a diagnostic, not a panic.
	bad := filepath.Join(tmp, "bad.pmrs")
	if err := os.WriteFile(bad, []byte("PMRS\x01\x00\x00\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-load", bad, "-addr", "127.0.0.1:0").CombinedOutput(); err == nil {
		t.Fatalf("pmserve accepted a corrupt series:\n%s", out)
	} else if strings.Contains(string(out), "panic") || !strings.Contains(string(out), "results:") {
		t.Fatalf("corrupt series should fail with a structured results error:\n%s", out)
	}

	cmd := exec.Command(bin, "-load", pmrs, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start pmserve: %v", err)
	}
	killed := time.AfterFunc(90*time.Second, func() { cmd.Process.Kill() })
	defer killed.Stop()
	defer cmd.Process.Kill()

	addrRe := regexp.MustCompile(`serving on http://([^/]+)/`)
	addrCh := make(chan string, 1)
	outDone := make(chan string, 1)
	go func() {
		var all strings.Builder
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			all.WriteString(line)
			all.WriteByte('\n')
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
		outDone <- all.String()
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case out := <-outDone:
		t.Fatalf("pmserve exited before serving:\n%s", out)
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for the pmserve address")
	}
	base := "http://" + addr

	// The store publishes right after the address line; poll briefly
	// until /v1/windows stops answering 503.
	var windowsDoc struct {
		Spec struct {
			Count int `json:"count"`
		} `json:"spec"`
		NumVertices int32                    `json:"num_vertices"`
		Windows     []map[string]interface{} `json:"windows"`
		Cache       map[string]interface{}   `json:"cache"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/windows")
		if err != nil {
			t.Fatalf("GET /v1/windows: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&windowsDoc)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decode /v1/windows: %v", err)
			}
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || time.Now().After(deadline) {
			t.Fatalf("GET /v1/windows: %s", resp.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if windowsDoc.Spec.Count != 8 || len(windowsDoc.Windows) != 8 {
		t.Fatalf("/v1/windows reports %d/%d windows, want 8", windowsDoc.Spec.Count, len(windowsDoc.Windows))
	}

	getJSON := func(path string, wantCache string) map[string]interface{} {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if got := resp.Header.Get("X-Cache"); wantCache != "" && got != wantCache {
			t.Fatalf("GET %s: X-Cache = %q, want %q", path, got, wantCache)
		}
		var m map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return m
	}

	// topk: first query misses, the identical query hits the cache.
	topk := getJSON("/v1/topk?window=2&k=3", "miss")
	ranks := topk["ranks"].([]interface{})
	if len(ranks) != 3 {
		t.Fatalf("topk returned %d ranks, want 3", len(ranks))
	}
	prev := 1.1
	for _, r := range ranks {
		rank := r.(map[string]interface{})["rank"].(float64)
		if rank <= 0 || rank > prev {
			t.Fatalf("topk ranks not positive-descending: %v", ranks)
		}
		prev = rank
	}
	getJSON("/v1/topk?window=2&k=3", "hit")
	// A different spelling of the same query still hits: the key is
	// canonical, not the raw query string.
	getJSON("/v1/topk?k=3&window=2", "hit")

	traj := getJSON("/v1/vertex/0/trajectory", "miss")
	if int(traj["windows"].(float64)) != 8 || len(traj["ranks"].([]interface{})) != 8 {
		t.Fatalf("trajectory shape wrong: %v", traj)
	}

	movers := getJSON("/v1/movers?from=0&to=7&k=5", "miss")
	if len(movers["movers"].([]interface{})) == 0 {
		t.Fatal("movers returned no entries")
	}

	// Error statuses are structured JSON, not panics.
	for path, want := range map[string]int{
		"/v1/topk":                     http.StatusBadRequest,
		"/v1/topk?window=99":           http.StatusNotFound,
		"/v1/vertex/999999/trajectory": http.StatusNotFound,
		"/v1/movers?from=0&to=xyz":     http.StatusBadRequest,
		"/no/such/route":               http.StatusNotFound,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %s, want %d", path, resp.Status, want)
		}
	}

	// The obs endpoints share the mux: /status reports serving, /metrics
	// exports the serve gauges, and / lists the endpoints.
	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	var st obs.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /status: %v", err)
	}
	if st.Phase != "serving" || st.WindowsDone != 8 {
		t.Fatalf("/status = %+v, want serving 8/8", st)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var metrics strings.Builder
	if _, err := io.Copy(&metrics, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(metrics.String(), "pmpr_serve_cache_hits_total") ||
		!strings.Contains(metrics.String(), "pmpr_serve_store_windows 8") {
		t.Fatalf("/metrics missing serve gauges:\n%s", metrics.String())
	}
	for _, name := range []string{
		"pmpr_serve_shed_total", "pmpr_serve_timeout_total",
		"pmpr_serve_panics_total", "pmpr_serve_inflight",
	} {
		if !strings.Contains(metrics.String(), name) {
			t.Fatalf("/metrics missing guard metric %s:\n%s", name, metrics.String())
		}
	}
	index := getJSON("/", "")
	if index["service"] != "pmserve" {
		t.Fatalf("index = %v", index)
	}

	// Health probes: alive and ready while serving.
	if doc := getJSON("/healthz", ""); doc["status"] != "ok" {
		t.Fatalf("/healthz = %v, want ok", doc)
	}
	if doc := getJSON("/readyz", ""); doc["status"] != "serving" {
		t.Fatalf("/readyz = %v, want serving", doc)
	}

	// Degrade-to-stale: corrupt the series file on disk and SIGHUP. The
	// reload must fail without taking the daemon down — queries keep
	// answering from the published generation with X-Stale, and /readyz
	// reports "degraded" (still 200, so load balancers keep routing).
	good, err := os.ReadFile(pmrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pmrs, []byte("PMRS\x01\x00\x00\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd.Process.Signal(syscall.SIGHUP)
	waitReadyz := func(want string) map[string]interface{} {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(base + "/readyz")
			if err != nil {
				t.Fatalf("GET /readyz: %v", err)
			}
			var doc map[string]interface{}
			err = json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decode /readyz: %v", err)
			}
			if doc["status"] == want {
				return doc
			}
			if time.Now().After(deadline) {
				t.Fatalf("/readyz never reached %q, last: %v", want, doc)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	doc := waitReadyz("degraded")
	if reason, _ := doc["reason"].(string); !strings.Contains(reason, "reload failed") {
		t.Fatalf("degraded readyz reason = %v, want reload failure", doc)
	}
	resp, err = http.Get(base + "/v1/topk?window=2&k=3")
	if err != nil {
		t.Fatalf("GET topk while degraded: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query = %s, want 200 stale-but-valid", resp.Status)
	}
	if resp.Header.Get("X-Stale") != "true" {
		t.Fatal("degraded query response missing X-Stale: true")
	}

	// Restore the file and SIGHUP again: the daemon recovers, the
	// generation advances, and X-Stale disappears.
	if err := os.WriteFile(pmrs, good, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd.Process.Signal(syscall.SIGHUP)
	waitReadyz("serving")
	resp, err = http.Get(base + "/v1/topk?window=2&k=3")
	if err != nil {
		t.Fatalf("GET topk after recovery: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Stale") != "" {
		t.Fatalf("recovered query = %s X-Stale=%q, want clean 200", resp.Status, resp.Header.Get("X-Stale"))
	}

	cmd.Process.Signal(os.Interrupt)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("pmserve exit: %v\n%s", err, <-outDone)
	}
}

// TestCLIServeDrain floods a live pmserve with concurrent clients (and
// one open SSE stream), then sends SIGTERM mid-flood: the daemon must
// exit 0 within -drain-timeout plus slack, every response must be a
// clean 200, a shed 503, or a connection error from the shutdown —
// never a partial body or a hang.
func TestCLIServeDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	tmp := t.TempDir()
	ev := filepath.Join(tmp, "enron.ev")
	pmrs := filepath.Join(tmp, "ranks.pmrs")
	runTool(t, "./cmd/pmgen", "-dataset", "enron", "-scale", "0.02", "-seed", "3", "-o", ev, "-format", "binary")
	runTool(t, "./cmd/pmrank", "-in", ev, "-delta-days", "365", "-slide", "172800",
		"-max-windows", "8", "-out", pmrs)
	bin := filepath.Join(tmp, "pmserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pmserve").CombinedOutput(); err != nil {
		t.Fatalf("go build pmserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-load", pmrs, "-addr", "127.0.0.1:0", "-drain-timeout", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start pmserve: %v", err)
	}
	killed := time.AfterFunc(90*time.Second, func() { cmd.Process.Kill() })
	defer killed.Stop()
	defer cmd.Process.Kill()

	addrRe := regexp.MustCompile(`serving on http://([^/]+)/`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for the pmserve address")
	}
	base := "http://" + addr

	// Wait for the store, then open an SSE stream that would never end
	// on its own — Shutdown must force-close it at the drain deadline.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("pmserve never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}
	sseResp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer sseResp.Body.Close()
	sseDone := make(chan struct{})
	go func() {
		defer close(sseDone)
		io.Copy(io.Discard, sseResp.Body)
	}()

	// Flood: 100 clients hammering a mix of cached and uncached queries.
	var (
		wg       sync.WaitGroup
		okCount  atomic.Int64
		shed     atomic.Int64
		connErrs atomic.Int64
		badMu    sync.Mutex
		bad      []string
	)
	stop := make(chan struct{})
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("%s/v1/topk?window=%d&k=%d", base, j%8, i%20+1)
				resp, err := http.Get(url)
				if err != nil {
					// The listener is closing under us; expected.
					connErrs.Add(1)
					return
				}
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case rerr != nil:
					connErrs.Add(1)
					return
				case resp.StatusCode == http.StatusOK:
					okCount.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						badMu.Lock()
						bad = append(bad, "503 without Retry-After")
						badMu.Unlock()
					}
				default:
					badMu.Lock()
					bad = append(bad, resp.Status)
					badMu.Unlock()
				}
			}
		}(i)
	}

	// Let the flood establish, then SIGTERM mid-flight.
	time.Sleep(300 * time.Millisecond)
	start := time.Now()
	cmd.Process.Signal(syscall.SIGTERM)
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("pmserve exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pmserve did not exit within -drain-timeout plus slack")
	}
	if elapsed := time.Since(start); elapsed > 12*time.Second {
		t.Fatalf("drain took %v, want within -drain-timeout plus slack", elapsed)
	}
	close(stop)
	wg.Wait()
	select {
	case <-sseDone:
		// The SSE stream was force-closed by the drain.
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after process exit")
	}

	if len(bad) > 0 {
		t.Fatalf("flood saw %d malformed responses, e.g. %s", len(bad), bad[0])
	}
	if okCount.Load() == 0 {
		t.Fatal("flood completed zero successful requests before the drain")
	}
	t.Logf("drain flood: %d ok, %d shed, %d connection errors", okCount.Load(), shed.Load(), connErrs.Load())
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	cases := [][]string{
		{"./cmd/pmgen", "-dataset", "nope"},
		{"./cmd/pmrank", "-in", "/does/not/exist"},
		{"./cmd/pmbench", "-exp", "nope"},
	}
	for _, args := range cases {
		cmd := exec.Command("go", append([]string{"run"}, args...)...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("%v unexpectedly succeeded:\n%s", args, out)
		}
	}
}
