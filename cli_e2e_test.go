package pmpr

// End-to-end tests of the command-line tools: generate a dataset with
// pmgen, analyze it with pmrank (exporting the rank series), and run a
// quick harness experiment with pmbench. These build and execute the
// real binaries via `go run`.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pmpr/internal/results"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	tmp := t.TempDir()
	ev := filepath.Join(tmp, "enron.ev")
	pmrs := filepath.Join(tmp, "ranks.pmrs")

	out := runTool(t, "./cmd/pmgen", "-dataset", "enron", "-scale", "0.02", "-seed", "3", "-o", ev, "-format", "binary")
	if _, err := os.Stat(ev); err != nil {
		t.Fatalf("pmgen produced no file: %v (output: %s)", err, out)
	}

	out = runTool(t, "./cmd/pmrank", "-in", ev, "-delta-days", "365", "-slide", "172800",
		"-max-windows", "12", "-top", "2", "-out", pmrs)
	if !strings.Contains(out, "postmortem: 12 windows") {
		t.Fatalf("unexpected pmrank output:\n%s", out)
	}

	f, err := os.Open(pmrs)
	if err != nil {
		t.Fatalf("open exported series: %v", err)
	}
	defer f.Close()
	series, err := results.Read(f)
	if err != nil {
		t.Fatalf("read exported series: %v", err)
	}
	if series.Spec.Count != 12 || len(series.Windows) != 12 {
		t.Fatalf("exported series has %d windows, want 12", len(series.Windows))
	}
	for w, wr := range series.Windows {
		var sum float64
		for _, r := range wr.Ranks {
			sum += r
		}
		if len(wr.Ranks) > 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("window %d ranks sum to %v", w, sum)
		}
	}

	// The other models run on the same file.
	for _, model := range []string{"streaming", "offline", "components", "kcore", "closeness"} {
		out := runTool(t, "./cmd/pmrank", "-in", ev, "-delta-days", "365", "-slide", "172800",
			"-max-windows", "6", "-model", model)
		if !strings.Contains(out, "6 windows") {
			t.Fatalf("%s: unexpected output:\n%s", model, out)
		}
	}

	// A quick harness experiment prints its table.
	out = runTool(t, "./cmd/pmbench", "-exp", "table1", "-quick", "-scale", "0.02")
	if !strings.Contains(out, "enron") || !strings.Contains(out, "wikitalk") {
		t.Fatalf("pmbench table1 output incomplete:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	cases := [][]string{
		{"./cmd/pmgen", "-dataset", "nope"},
		{"./cmd/pmrank", "-in", "/does/not/exist"},
		{"./cmd/pmbench", "-exp", "nope"},
	}
	for _, args := range cases {
		cmd := exec.Command("go", append([]string{"run"}, args...)...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("%v unexpectedly succeeded:\n%s", args, out)
		}
	}
}
