// Collaboration: the paper's Sec. 3.1 use case. An academic
// collaboration network (HepTh-like synthetic data: one event per
// co-authored paper) is analyzed at two time scales:
//
//   - a large window (delta = 4 years) ranks the influential authors of
//     a scientific era, and
//   - a small window (delta = 1 year) tracks current collaborator
//     dynamics at a finer resolution.
//
// Neither scale is "better" — they answer different questions; the
// postmortem engine computes both series from the same temporal CSR.
//
// Run with: go run ./examples/collaboration
package main

import (
	"context"

	"fmt"
	"log"

	"pmpr/internal/analysis"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/sched"
)

func main() {
	profile, _ := gen.Get("hepth")
	raw, err := profile.Generate(0.1, 7)
	if err != nil {
		log.Fatal(err)
	}
	l := raw.Symmetrize() // co-authorship is symmetric
	pool := sched.NewPool(0)
	defer pool.Close()

	for _, scale := range []struct {
		label     string
		deltaDays float64
		slideDays int64
	}{
		{"era view (4-year windows)", 4 * 365, 180},
		{"dynamics view (1-year windows)", 365, 60},
	} {
		spec, err := events.Span(l, int64(scale.deltaDays*float64(gen.Day)), scale.slideDays*gen.Day)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Directed = false
		eng, err := core.NewEngine(l, spec, cfg, pool)
		if err != nil {
			log.Fatal(err)
		}
		series, err := eng.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d windows ==\n", scale.label, series.Len())
		step := series.Len() / 4
		if step < 1 {
			step = 1
		}
		for w := 0; w < series.Len(); w += step {
			r := series.Window(w)
			fmt.Printf("  window %3d (+%4dd): top authors:", w, (spec.Start(w)-spec.T0)/gen.Day)
			for _, rk := range r.TopK(3) {
				fmt.Printf(" a%d(%.4f)", rk.Vertex, rk.Rank)
			}
			fmt.Println()
		}
		// How stable is the ranking between the first and last window?
		first := series.Window(0).Dense(l.NumVertices())
		last := series.Window(series.Len() - 1).Dense(l.NumVertices())
		fmt.Printf("  top-10 overlap first vs last window: %.0f%%, Spearman %.2f\n\n",
			100*analysis.TopKOverlap(first, last, 10), analysis.Spearman(first, last))
	}
}
