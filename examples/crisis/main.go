// Crisis: the paper's Sec. 3.2 motivation (Hossain, Murshed et al.):
// during an organizational crisis, previously prominent actors of a
// communication network become central. On Enron-like synthetic email
// data (quiet background + a sharp event spike), this example runs a
// postmortem PageRank time series and reports which actors gained the
// most centrality inside the crisis window compared to before it.
//
// Run with: go run ./examples/crisis
package main

import (
	"context"

	"fmt"
	"log"
	"sort"

	"pmpr/internal/analysis"
	"pmpr/internal/betweenness"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/sched"
)

func main() {
	profile, _ := gen.Get("enron")
	raw, err := profile.Generate(0.1, 11)
	if err != nil {
		log.Fatal(err)
	}
	l := raw.Symmetrize()
	pool := sched.NewPool(0)
	defer pool.Close()

	// Quarterly windows sliding by two weeks.
	spec, err := events.Span(l, 90*gen.Day, 14*gen.Day)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Directed = false
	eng, err := core.NewEngine(l, spec, cfg, pool)
	if err != nil {
		log.Fatal(err)
	}
	series, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Locate the crisis: the window with the most active vertices.
	crisis := 0
	for w := 1; w < series.Len(); w++ {
		if series.Window(w).ActiveVertices > series.Window(crisis).ActiveVertices {
			crisis = w
		}
	}
	before := crisis - 8
	if before < 0 {
		before = 0
	}
	fmt.Printf("%d windows; crisis peak at window %d (day %d, %d active actors; window %d has %d)\n",
		series.Len(), crisis, (spec.Start(crisis)-spec.T0)/gen.Day,
		series.Window(crisis).ActiveVertices, before, series.Window(before).ActiveVertices)

	// Actors whose centrality grew the most into the crisis.
	pre := series.Window(before).Dense(l.NumVertices())
	peak := series.Window(crisis).Dense(l.NumVertices())
	type gain struct {
		actor int32
		pre   float64
		peak  float64
	}
	var gains []gain
	for v := int32(0); v < l.NumVertices(); v++ {
		if peak[v] > 0 {
			gains = append(gains, gain{v, pre[v], peak[v]})
		}
	}
	sort.Slice(gains, func(i, j int) bool {
		return gains[i].peak-gains[i].pre > gains[j].peak-gains[j].pre
	})
	fmt.Println("actors gaining the most centrality into the crisis:")
	for i := 0; i < 5 && i < len(gains); i++ {
		g := gains[i]
		fmt.Printf("  actor %4d: PR %.5f -> %.5f\n", g.actor, g.pre, g.peak)
	}

	// The crisis reshuffles the hierarchy: ranking agreement with the
	// pre-crisis window drops at the peak and recovers afterwards.
	fmt.Println("top-10 overlap with the pre-crisis window over time:")
	for w := before; w < series.Len() && w <= crisis+8; w += 4 {
		cur := series.Window(w).Dense(l.NumVertices())
		marker := ""
		if w == crisis {
			marker = "  <- crisis peak"
		}
		fmt.Printf("  window %3d: %.0f%%%s\n", w, 100*analysis.TopKOverlap(pre, cur, 10), marker)
	}

	// Who brokers the crisis communication? Betweenness (sampled
	// Brandes) over the same temporal representation identifies the
	// go-between actors at the peak.
	bwCfg := betweenness.DefaultConfig()
	bwCfg.SampleSources = 32
	bwCfg.Directed = false
	bwEng, err := betweenness.NewEngineFromTemporal(eng.Temporal(), bwCfg, pool)
	if err != nil {
		log.Fatal(err)
	}
	bw, err := bwEng.Run()
	if err != nil {
		log.Fatal(err)
	}
	peakBW := bw.Window(crisis)
	fmt.Printf("top broker at the crisis peak: actor %d (betweenness ~%.0f across %d sampled sources)\n",
		peakBW.Top, peakBW.TopScore, peakBW.SampledSources)
}
