// Quickstart: postmortem PageRank over the paper's running example
// (Fig. 2). Fourteen temporal events define a graph observed through
// three overlapping 3.5-month windows; the analysis shows vertex 7
// appearing in the second window and vertex 2 taking over as the hub in
// the third.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"

	"fmt"
	"log"

	"pmpr/internal/core"
	"pmpr/internal/events"
)

func main() {
	// The temporal edge list of Fig. 2a, dates as day offsets from
	// 6/1/2021.
	raw := []events.Event{
		{U: 1, V: 2, T: 20},  // 06/21
		{U: 3, V: 5, T: 24},  // 06/25
		{U: 4, V: 6, T: 40},  // 07/11
		{U: 2, V: 3, T: 61},  // 08/01
		{U: 2, V: 4, T: 71},  // 08/11
		{U: 5, V: 6, T: 104}, // 09/13
		{U: 2, V: 7, T: 123}, // 10/02
		{U: 4, V: 7, T: 126}, // 10/05
		{U: 5, V: 7, T: 127}, // 10/06
		{U: 6, V: 7, T: 130}, // 10/09
		{U: 1, V: 2, T: 157}, // 11/05
		{U: 1, V: 3, T: 158}, // 11/06
		{U: 2, V: 5, T: 161}, // 11/09
		{U: 3, V: 5, T: 164}, // 11/12
	}
	l, err := events.NewLog(raw, 8)
	if err != nil {
		log.Fatal(err)
	}
	// The relations are undirected: store both directions, as the
	// paper's temporal CSR does (Fig. 3).
	l = l.Symmetrize()

	// Sliding window: delta = 3.5 months (~106 days), sw = 1 month.
	spec := events.WindowSpec{T0: 0, Delta: 106, Slide: 30, Count: 3}

	cfg := core.DefaultConfig() // SpMM kernel, nested parallelism, partial init
	cfg.Directed = false
	eng, err := core.NewEngine(l, spec, cfg, nil) // nil pool = serial
	if err != nil {
		log.Fatal(err)
	}
	series, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	for w := 0; w < series.Len(); w++ {
		r := series.Window(w)
		fmt.Printf("T%d (days %d..%d): %d active vertices, %d iterations\n",
			w+1, spec.Start(w), spec.End(w), r.ActiveVertices, r.Iterations)
		for _, rk := range r.TopK(3) {
			fmt.Printf("  vertex %d  PR=%.4f\n", rk.Vertex, rk.Rank)
		}
	}
	fmt.Printf("\nvertex 7 over time: T1=%.4f  T2=%.4f  T3=%.4f (joins the graph in T2)\n",
		series.Window(0).Rank(7), series.Window(1).Rank(7), series.Window(2).Rank(7))
}
