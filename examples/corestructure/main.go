// Corestructure: postmortem analysis with the other kernels the paper's
// Sec. 3.1 mentions for the sliding-window model — connected components
// and k-core decomposition — over the same temporal CSR representation
// used for PageRank. On stackoverflow-like growing data it tracks how
// the community consolidates: the giant component swallows the graph
// and the innermost core densifies over time.
//
// Run with: go run ./examples/corestructure
package main

import (
	"fmt"
	"log"

	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/kcore"
	"pmpr/internal/sched"
	"pmpr/internal/wcc"
)

func main() {
	profile, _ := gen.Get("stackoverflow")
	raw, err := profile.Generate(0.05, 13)
	if err != nil {
		log.Fatal(err)
	}
	l := raw.Symmetrize()
	spec, err := events.Span(l, 180*gen.Day, 90*gen.Day)
	if err != nil {
		log.Fatal(err)
	}
	pool := sched.NewPool(0)
	defer pool.Close()

	wEng, err := wcc.NewEngine(l, spec, wcc.DefaultConfig(), pool)
	if err != nil {
		log.Fatal(err)
	}
	comps, err := wEng.Run()
	if err != nil {
		log.Fatal(err)
	}
	// Reuse the same temporal representation for the k-core pass.
	kEng, err := kcore.NewEngineFromTemporal(wEng.Temporal(), kcore.DefaultConfig(), pool)
	if err != nil {
		log.Fatal(err)
	}
	cores, err := kEng.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d windows (delta=180d, sw=90d) over %d events\n\n", spec.Count, l.Len())
	fmt.Printf("%-8s %10s %12s %14s %9s %14s\n",
		"window", "|V|", "components", "giant share", "max core", "core size")
	for w := 0; w < spec.Count; w++ {
		cw, kw := comps.Window(w), cores.Window(w)
		share := 0.0
		if cw.ActiveVertices > 0 {
			share = float64(cw.LargestSize) / float64(cw.ActiveVertices)
		}
		fmt.Printf("%-8d %10d %12d %13.0f%% %9d %14d\n",
			w, cw.ActiveVertices, cw.Components, 100*share, kw.MaxCore, kw.MaxCoreSize)
	}
	fmt.Println("\n(growing data: the giant component's share and the degeneracy rise over time)")
}
