// Modelcompare: runs all three execution models of the paper — offline,
// streaming, and postmortem — over the same temporal graph, verifies
// they produce the same per-window PageRank (as the paper arranges for
// its comparison), and reports their wall times.
//
// Run with: go run ./examples/modelcompare
package main

import (
	"context"

	"fmt"
	"log"
	"time"

	"pmpr/internal/analysis"
	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/offline"
	"pmpr/internal/sched"
	"pmpr/internal/streaming"
)

func main() {
	profile, _ := gen.Get("wikitalk")
	raw, err := profile.Generate(0.05, 3)
	if err != nil {
		log.Fatal(err)
	}
	l := raw.Symmetrize()
	spec, err := events.Span(l, 90*gen.Day, 3*gen.Day)
	if err != nil {
		log.Fatal(err)
	}
	if spec.Count > 128 {
		spec.Count = 128
	}
	fmt.Printf("wikitalk-like log: %d events, %d vertices, %d windows (delta=90d, sw=3d)\n",
		l.Len(), l.NumVertices(), spec.Count)

	pool := sched.NewPool(0)
	defer pool.Close()

	// Offline: rebuild every window from the event database.
	t0 := time.Now()
	offStats, err := offline.Run(l, spec, offline.DefaultConfig(), pool)
	if err != nil {
		log.Fatal(err)
	}
	offT := time.Since(t0)

	// Streaming: one mutable graph, windows strictly in order.
	r, err := streaming.NewRunner(l, spec, streaming.DefaultConfig(), pool)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	strStats, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	strT := time.Since(t0)

	// Postmortem: temporal CSR + partial init + SpMM + both parallelism
	// levels.
	cfg := core.DefaultConfig()
	cfg.Directed = false
	eng, err := core.NewEngine(l, spec, cfg, pool)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	series, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	postT := time.Since(t0)

	// All three models share the PageRank convention, so the series
	// must agree window by window.
	worstL1, worstOverlap := 0.0, 1.0
	for w := 0; w < spec.Count; w++ {
		post := series.Window(w).Dense(l.NumVertices())
		if d := analysis.L1(post, offStats[w].Ranks); d > worstL1 {
			worstL1 = d
		}
		if d := analysis.L1(post, strStats[w].Ranks); d > worstL1 {
			worstL1 = d
		}
		if o := analysis.TopKOverlap(post, strStats[w].Ranks, 10); o < worstOverlap {
			worstOverlap = o
		}
	}
	fmt.Printf("result agreement across models: worst L1 distance %.2g, worst top-10 overlap %.0f%%\n",
		worstL1, 100*worstOverlap)

	fmt.Printf("\n%-12s %10s\n", "model", "time")
	fmt.Printf("%-12s %9.3fs\n", "offline", offT.Seconds())
	fmt.Printf("%-12s %9.3fs\n", "streaming", strT.Seconds())
	fmt.Printf("%-12s %9.3fs   (%.1fx vs streaming, %.1fx vs offline)\n",
		"postmortem", postT.Seconds(),
		strT.Seconds()/postT.Seconds(), offT.Seconds()/postT.Seconds())
}
