// Package pmpr is a Go reproduction of "Postmortem Computation of
// Pagerank on Temporal Graphs" (Hossain & Saule, ICPP 2022).
//
// The library computes PageRank over every window of a sliding-window
// temporal graph under three execution models:
//
//   - postmortem (the paper's contribution, internal/core): a temporal
//     CSR partitioned into multi-window graphs, partial initialization,
//     window/application/nested parallelism, and an SpMM-inspired
//     multi-vector kernel;
//   - offline (internal/offline): rebuild each window graph from the
//     event database and solve from scratch;
//   - streaming (internal/streaming): a STINGER-like dynamic graph
//     updated by batches with incremental PageRank.
//
// See README.md for usage, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for reproduction results. The
// benchmarks in bench_test.go regenerate each paper table/figure as a
// testing.B target; cmd/pmbench prints the full tables.
package pmpr
